package instance

import (
	"errors"
	"strings"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := graph.ParseEdgeList("0-1 0-2 1-3 2-3")
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValid(t *testing.T) {
	g := diamond(t)
	z := adversary.FromSlices([]int{1})
	in, err := New(g, z, view.AdHoc(g), 0, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if in.Dealer != 0 || in.Receiver != 3 || in.N() != 4 {
		t.Fatal("fields wrong")
	}
	if !strings.Contains(in.String(), "n=4") {
		t.Fatalf("String = %q", in.String())
	}
}

func TestNewValidation(t *testing.T) {
	g := diamond(t)
	z := adversary.FromSlices([]int{1})
	gamma := view.AdHoc(g)
	tests := []struct {
		name    string
		z       adversary.Structure
		d, r    int
		wantErr error
	}{
		{"dealer missing", z, 9, 3, ErrDealerMissing},
		{"receiver missing", z, 0, 9, ErrReceiverMissing},
		{"dealer == receiver", z, 0, 0, ErrDealerIsReceiver},
		{"corruptible dealer", adversary.FromSlices([]int{0}), 0, 3, ErrDealerCorruptib},
		{"corruptible receiver", adversary.FromSlices([]int{3}), 0, 3, ErrReceiverCorrupt},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(g, tt.z, gamma, tt.d, tt.r)
			if !errors.Is(err, tt.wantErr) {
				t.Errorf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestNewRejectsNonNodeStructure(t *testing.T) {
	g := diamond(t)
	z := adversary.FromSlices([]int{55})
	if _, err := New(g, z, view.AdHoc(g), 0, 3); err == nil {
		t.Fatal("accepted structure over non-nodes")
	}
}

func TestNewRejectsPartialViewDomain(t *testing.T) {
	g := diamond(t)
	sub := graph.New()
	sub.AddNode(0)
	gamma, err := view.FromMap(map[int]*graph.Graph{0: sub})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, adversary.Trivial(), gamma, 0, 3); err == nil {
		t.Fatal("accepted view function not covering V(G)")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	g := diamond(t)
	MustNew(g, adversary.Trivial(), view.AdHoc(g), 0, 0)
}

func TestLocalAndJointStructure(t *testing.T) {
	g := diamond(t)
	z := adversary.FromSlices([]int{1}, []int{2})
	in := MustNew(g, z, view.AdHoc(g), 0, 3)
	// γ(3) = {1,2,3}; Z_3 = ⟨{1},{2}⟩ on that domain.
	r3 := in.LocalStructure(3)
	if !r3.Domain.Equal(nodeset.Of(1, 2, 3)) {
		t.Fatalf("Z_3 domain = %v", r3.Domain)
	}
	if !r3.Structure.Equal(adversary.FromSlices([]int{1}, []int{2})) {
		t.Fatalf("Z_3 = %v", r3.Structure)
	}
	// Unknown node → identity.
	if !in.LocalStructure(42).Equal(adversary.Identity()) {
		t.Fatal("unknown node local structure not identity")
	}
	// Joint of {3} is Z_3 itself.
	if !in.JointStructure(nodeset.Of(3)).Equal(r3) {
		t.Fatal("JointStructure({3}) != Z_3")
	}
}

func TestAdmissibleAndMaximal(t *testing.T) {
	g := diamond(t)
	z := adversary.FromSlices([]int{1, 2})
	in := MustNew(g, z, view.AdHoc(g), 0, 3)
	if !in.Admissible(nodeset.Of(1)) || !in.Admissible(nodeset.Empty()) {
		t.Fatal("Admissible too strict")
	}
	if in.Admissible(nodeset.Of(3)) {
		t.Fatal("Admissible too lax")
	}
	max := in.MaximalCorruptions()
	if len(max) != 1 || !max[0].Equal(nodeset.Of(1, 2)) {
		t.Fatalf("MaximalCorruptions = %v", max)
	}
	if !in.HonestNodes(nodeset.Of(1)).Equal(nodeset.Of(0, 2, 3)) {
		t.Fatal("HonestNodes wrong")
	}
}

func TestAdHocConstructor(t *testing.T) {
	g := diamond(t)
	in, err := AdHoc(g, adversary.FromSlices([]int{1}), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Gamma.NodesOf(0).Equal(nodeset.Of(0, 1, 2)) {
		t.Fatal("AdHoc constructor views wrong")
	}
}
