package instance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"

	"rmt/internal/graph"
)

// This file defines the canonical content identity of an instance: two
// Instance values describing the same tuple 𝓘 = (G, 𝒵, γ, D, R) — however
// their graphs, structures or views were assembled, and in whatever input
// order — render the same CanonicalString and therefore hash to the same
// CanonicalKey. The key is what the rmtd query daemon uses to cache
// feasibility verdicts and run results across requests: a client phrasing
// the same instance with permuted edge lists or structure sets hits the
// same cache line.

// canonical carries the lazily computed identity; it lives behind a
// pointer so Instance stays copy-safe and the memo is shared by copies.
type canonical struct {
	once sync.Once
	str  string
	key  string
}

// CanonicalString renders the full instance tuple in a canonical textual
// form: sorted node and edge lists for G, the sorted antichain of maximal
// sets for 𝒵, each node's view graph in node order for γ, then the
// terminals. It is injective on instance tuples (two instances render
// equal strings iff graph, structure, views and terminals all coincide),
// which makes the derived hash a sound cache key.
func (in *Instance) CanonicalString() string {
	in.canon.once.Do(in.renderCanonical)
	return in.canon.str
}

// CanonicalKey returns the canonical content hash of the instance: the
// hex-encoded SHA-256 of CanonicalString. Equal keys identify equal
// instance tuples (up to hash collision); input order of edges, structure
// sets and view edges never influences the key.
func (in *Instance) CanonicalKey() string {
	in.canon.once.Do(in.renderCanonical)
	return in.canon.key
}

func (in *Instance) renderCanonical() {
	var b strings.Builder
	b.WriteString("rmt-instance-v1\n")
	fmt.Fprintf(&b, "graph: %s\n", canonicalGraph(in.G))
	fmt.Fprintf(&b, "structure: %s\n", canonicalStructureOf(in))
	b.WriteString("gamma:\n")
	in.Gamma.Domain().ForEach(func(v int) bool {
		fmt.Fprintf(&b, "  %d: %s\n", v, canonicalGraph(in.Gamma.Of(v)))
		return true
	})
	fmt.Fprintf(&b, "dealer: %d\nreceiver: %d\n", in.Dealer, in.Receiver)
	in.canon.str = b.String()
	sum := sha256.Sum256([]byte(in.canon.str))
	in.canon.key = hex.EncodeToString(sum[:])
}

// canonicalGraph renders nodes and edges in sorted order. The node set is
// included explicitly so isolated nodes are part of the identity.
func canonicalGraph(g *graph.Graph) string {
	var b strings.Builder
	b.WriteString("V{")
	b.WriteString(g.Nodes().Key())
	b.WriteString("} E{")
	for i, e := range g.Edges() { // Edges iterates sorted: u ascending, v>u ascending
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d-%d", e[0], e[1])
	}
	b.WriteString("}")
	return b.String()
}

// canonicalStructureOf renders the antichain of maximal sets sorted by
// their canonical set keys — the stored antichain order can depend on the
// order sets were supplied in, so it is normalized here.
func canonicalStructureOf(in *Instance) string {
	maximal := in.Z.Maximal()
	keys := make([]string, len(maximal))
	for i, s := range maximal {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, ";")
}
