package ppa

import (
	"math/rand"
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/core"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/view"
)

func fullInstance(t *testing.T, edges string, z adversary.Structure, d, r int) *instance.Instance {
	t.Helper()
	g, err := graph.ParseEdgeList(edges)
	if err != nil {
		t.Fatal(err)
	}
	in, err := instance.New(g, z, view.Full(g), d, r)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestHonestDelivery(t *testing.T) {
	in := fullInstance(t, "0-1 1-2", adversary.Trivial(), 0, 2)
	res, err := Run(in, "m", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(2); !ok || got != "m" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestResilientTriplePath(t *testing.T) {
	// Singleton corruptions, three disjoint paths: PPA succeeds.
	in := fullInstance(t, "0-1 0-2 0-3 1-4 2-4 3-4",
		adversary.FromSlices([]int{1}, []int{2}, []int{3}), 0, 4)
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("PPA not resilient on triple path")
	}
	if _, _, found := PairCut(in); found {
		t.Fatal("pair cut found on triple path")
	}
}

func TestPairCutDiamond(t *testing.T) {
	// Weak diamond: {1} ∪ {2} cuts D from R — unsolvable even with full
	// knowledge.
	in := fullInstance(t, "0-1 0-2 1-3 2-3",
		adversary.FromSlices([]int{1}, []int{2}), 0, 3)
	z1, z2, found := PairCut(in)
	if !found {
		t.Fatal("no pair cut on weak diamond")
	}
	if !z1.Union(z2).Equal(nodeset.Of(1, 2)) {
		t.Fatalf("pair cut = %v ∪ %v", z1, z2)
	}
	ok, err := Resilient(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("PPA resilient despite pair cut")
	}
}

func TestSafetyAgainstValueForgery(t *testing.T) {
	in := fullInstance(t, "0-1 0-2 0-3 1-4 2-4 3-4",
		adversary.FromSlices([]int{1}, []int{2}, []int{3}), 0, 4)
	for _, c := range []int{1, 2, 3} {
		res, err := Run(in, "real", map[int]network.Process{c: core.NewValueFlipper(in, c, "forged")}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(4); !ok || got != "real" {
			t.Fatalf("corrupt=%d: decision = %q, %v", c, got, ok)
		}
	}
}

func TestDisconnectedTrivialPairCut(t *testing.T) {
	in := fullInstance(t, "0-1 2-3", adversary.Trivial(), 0, 3)
	if _, _, found := PairCut(in); !found {
		t.Fatal("disconnected instance has no pair cut?")
	}
}

// TestPairCutTightness: PPA succeeds iff no 𝒵-pair cut, on random
// full-knowledge instances.
func TestPairCutTightness(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		n := 4 + r.Intn(3)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(0, n-1)), 1+r.Intn(2), 0.4)
		in, err := instance.New(g, z, view.Full(g), 0, n-1)
		if err != nil {
			continue
		}
		_, _, cut := PairCut(in)
		ok, err := Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		if cut == ok {
			t.Fatalf("trial %d: pairCut=%v but resilient=%v\nG=%v Z=%v", trial, cut, ok, g, z)
		}
		checked++
	}
	if checked < 30 {
		t.Fatalf("only %d instances checked", checked)
	}
}

// TestPKADominatesPPA: RMT-PKA (unique) must solve every instance PPA
// solves; on full-knowledge instances the two coincide.
func TestPKADominatesPPA(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 25; trial++ {
		n := 4 + r.Intn(2)
		g := graph.NewWithNodes(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if r.Float64() < 0.5 {
					g.AddEdge(u, v)
				}
			}
		}
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(0, n-1)), 2, 0.35)
		in, err := instance.New(g, z, view.Full(g), 0, n-1)
		if err != nil {
			continue
		}
		ppaOK, err := Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		pkaOK, err := core.Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		if ppaOK && !pkaOK {
			t.Fatalf("trial %d: PPA solves but PKA does not (uniqueness violated)\nG=%v Z=%v", trial, g, z)
		}
		if pkaOK != ppaOK {
			t.Fatalf("trial %d: full-knowledge PKA=%v vs PPA=%v should coincide\nG=%v Z=%v", trial, pkaOK, ppaOK, g, z)
		}
	}
}

func TestErroneousTrafficIgnored(t *testing.T) {
	in := fullInstance(t, "0-1 0-2 1-3 2-3", adversary.FromSlices([]int{1}), 0, 3)
	spam := &byzantine.Spammer{ID: 1, Neighbors: in.G.Neighbors(1), PerRound: 2}
	res, err := Run(in, "x", map[int]network.Process{1: spam}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(3); !ok || got != "x" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}
