// Package ppa implements the Path Propagation Algorithm — the classic
// full-topology-knowledge baseline for RMT against a general adversary
// (used in [13] and subsumed by RMT-PKA as a special case).
//
// Dealer value messages flood the network carrying their propagation trail,
// exactly like RMT-PKA's type-1 messages (type-2 knowledge exchange is
// unnecessary: every player already knows G and 𝒵). The receiver decides x
// as soon as it holds a path set P_x, all carrying x, such that for every
// admissible corruption set T some path in P_x has a T-free interior.
//
// Safety: for a wrong value x' every x'-carrying path passes through the
// actual corruption set T* (an honest path would have relayed x_D), so the
// quantifier fails at T = T*. Liveness: with full knowledge, RMT is
// solvable iff no D–R cut is the union of two admissible sets ("𝒵-pair
// cut"); then for the actual T* the honest paths hit every T ∈ 𝒵 and the
// receiver decides. Both facts are exercised against RMT-PKA in the eval
// package's baseline comparison.
package ppa

import (
	"sort"

	"rmt/internal/core"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// Receiver is PPA's receiver: it collects value-trail messages and applies
// the every-corruption-set-misses-a-path rule.
type Receiver struct {
	id      int
	dealer  int
	z       []nodeset.Set // maximal corruption sets (checking those suffices)
	byValue map[network.Value][]graph.Path
	decided bool
	value   network.Value
}

// NewReceiver builds PPA's receiver for the instance.
func NewReceiver(in *instance.Instance) *Receiver {
	return &Receiver{
		id:      in.Receiver,
		dealer:  in.Dealer,
		z:       in.Z.Maximal(),
		byValue: make(map[network.Value][]graph.Path),
	}
}

// Init implements network.Process.
func (r *Receiver) Init(network.Outbox) {}

// Round implements network.Process.
func (r *Receiver) Round(_ int, inbox []network.Message, _ network.Outbox) bool {
	if r.decided {
		return false
	}
	for _, m := range inbox {
		vm, ok := m.Payload.(core.ValueMsg)
		if !ok {
			continue
		}
		trail := vm.P
		if len(trail) == 0 || trail.Contains(r.id) || trail.Tail() != m.From {
			continue // forged trail
		}
		if trail.Head() != r.dealer {
			continue // PPA only cares about dealer-rooted paths
		}
		r.byValue[vm.X] = append(r.byValue[vm.X], trail.Append(r.id))
	}
	// Candidate values are scanned in sorted order: outside 𝒵 two values can
	// certify in the same round, and the decision must not depend on map
	// iteration order (the attack sweep asserts byte-identical output).
	candidates := make([]network.Value, 0, len(r.byValue))
	for x := range r.byValue {
		candidates = append(candidates, x)
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i] < candidates[j] })
	for _, x := range candidates {
		if r.certifies(r.byValue[x]) {
			r.decided, r.value = true, x
			return false
		}
	}
	return true
}

// certifies checks: ∀ maximal T ∈ 𝒵 ∃ path whose interior avoids T.
func (r *Receiver) certifies(paths []graph.Path) bool {
	for _, t := range r.z {
		hit := false
		for _, p := range paths {
			if p.Interior().Disjoint(t) {
				hit = true
				break
			}
		}
		if !hit {
			return false
		}
	}
	return true
}

// Decision implements network.Process.
func (r *Receiver) Decision() (network.Value, bool) { return r.value, r.decided }

// relay forwards value-trail messages with the Protocol-1 admission rule.
// PPA relays are RMT-PKA relays minus the knowledge announcements; reusing
// core.Relay directly would also announce type-2 info, so PPA has its own
// lean relay.
type relay struct {
	id        int
	neighbors nodeset.Set
}

// Init implements network.Process.
func (r *relay) Init(network.Outbox) {}

// Round implements network.Process.
func (r *relay) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	for _, m := range inbox {
		vm, ok := m.Payload.(core.ValueMsg)
		if !ok {
			continue
		}
		if len(vm.P) == 0 || vm.P.Contains(r.id) || vm.P.Tail() != m.From {
			continue
		}
		next := core.ValueMsg{X: vm.X, P: vm.P.Append(r.id)}
		r.neighbors.ForEach(func(u int) bool {
			out(u, next)
			return true
		})
	}
	return true
}

// Decision implements network.Process.
func (r *relay) Decision() (network.Value, bool) { return "", false }

// dealer sends (x_D, {D}) to all neighbors and terminates.
type dealer struct {
	id        int
	value     network.Value
	neighbors nodeset.Set
}

func (d *dealer) Init(out network.Outbox) {
	d.neighbors.ForEach(func(u int) bool {
		out(u, core.ValueMsg{X: d.value, P: graph.Path{d.id}})
		return true
	})
}
func (d *dealer) Round(int, []network.Message, network.Outbox) bool { return false }
func (d *dealer) Decision() (network.Value, bool)                   { return d.value, true }

// NewProcesses assembles the PPA process map.
func NewProcesses(in *instance.Instance, xD network.Value, corrupt map[int]network.Process) map[int]network.Process {
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), corrupt, func(v int) network.Process {
		switch v {
		case in.Dealer:
			return &dealer{id: v, value: xD, neighbors: in.G.Neighbors(v)}
		case in.Receiver:
			return NewReceiver(in)
		default:
			return &relay{id: v, neighbors: in.G.Neighbors(v)}
		}
	})
}

// Proto is PPA's registry entry; the package registers it under
// protocol.PPA at init.
type Proto struct{}

// Name implements protocol.Protocol.
func (Proto) Name() string { return protocol.PPA }

// Caps implements protocol.Protocol: PPA is the full-topology-knowledge
// baseline and only the receiver decides.
func (Proto) Caps() protocol.Caps { return protocol.Caps{NeedsFullKnowledge: true} }

// Assemble implements protocol.Protocol.
func (Proto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	return NewProcesses(in, xD, opts.Corrupt), nil
}

// Solvable implements protocol.Feasibility: with full knowledge, PPA is
// tight against the 𝒵-pair cut condition.
func (Proto) Solvable(in *instance.Instance) bool {
	_, _, cut := PairCut(in)
	return !cut
}

func init() { protocol.Register(Proto{}) }

// Run executes PPA on the instance.
func Run(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, engine network.Engine) (*network.Result, error) {
	return protocol.Run(Proto{}, in, xD, protocol.Options{Engine: engine, Corrupt: corrupt})
}

// Resilient reports whether PPA achieves RMT against every maximal silent
// corruption set.
func Resilient(in *instance.Instance) (bool, error) {
	for _, t := range in.MaximalCorruptions() {
		res, err := Run(in, "1", protocol.Silence(t), nil)
		if err != nil {
			return false, err
		}
		if _, ok := res.DecisionOf(in.Receiver); !ok {
			return false, nil
		}
	}
	return true, nil
}

// PairCut searches for a 𝒵-pair cut: a D–R separator C = Z1 ∪ Z2 with
// Z1, Z2 ∈ 𝒵 — the full-knowledge impossibility condition PPA is tight
// against. It returns a witness if one exists.
func PairCut(in *instance.Instance) (z1, z2 nodeset.Set, found bool) {
	if !in.G.Connected(in.Dealer, in.Receiver) {
		return nodeset.Empty(), nodeset.Empty(), true
	}
	in.G.ReceiverSideCandidates(in.Dealer, in.Receiver, func(b, cut nodeset.Set) bool {
		// A pair cut is exactly a cut on which Q2 fails.
		if c1, c2, covered := in.Z.CoversWith(cut); covered {
			z1, z2, found = c1, c2, true
			return false
		}
		return true
	})
	return z1, z2, found
}
