package mbrb_test

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/mbrb"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// kInstance builds the standard MBRB test instance: K_n with dealer 0,
// receiver n−1, and a global t-threshold structure over the interior nodes.
func kInstance(t *testing.T, n, thr int) *instance.Instance {
	t.Helper()
	g := gen.Complete(n)
	universe := g.Nodes().Remove(0).Remove(n - 1)
	in, err := instance.AdHoc(g, adversary.GlobalThreshold(universe, thr), 0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestHonestRunAllDeliver pins the fault-free behavior: every player
// delivers x_D, identically on every in-process engine.
func TestHonestRunAllDeliver(t *testing.T) {
	in := kInstance(t, 6, 1)
	var key string
	for _, eng := range []network.Engine{network.Lockstep, network.Goroutine, network.Async} {
		res, err := mbrb.Run(in, "x", nil, mbrb.Options{Engine: eng, MABudget: 1, RecordTranscript: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Decisions) != 6 {
			t.Fatalf("%s: %d players delivered, want all 6", eng.Name(), len(res.Decisions))
		}
		for v, x := range res.Decisions {
			if x != "x" {
				t.Errorf("%s: player %d delivered %q", eng.Name(), v, x)
			}
		}
		if key == "" {
			key = res.Transcript.Key()
		} else if res.Transcript.Key() != key {
			t.Errorf("%s: transcript differs from lockstep", eng.Name())
		}
	}
}

// TestToleratesByzantineAndSuppression exercises the full adversary at the
// just-feasible bound n = 3t+2d+1: t silent Byzantine players plus a
// d-victim eclipse. Every correct non-victim must still deliver.
func TestToleratesByzantineAndSuppression(t *testing.T) {
	in := kInstance(t, 6, 1) // n=6, t=1, d=1: 6 > 3+2
	corrupt := nodeset.Of(1)
	res, err := mbrb.Run(in, "x", protocol.Silence(corrupt), mbrb.Options{
		MABudget:     1,
		MsgAdversary: network.NewEclipse(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 3, 4, 5} {
		if got, ok := res.DecisionOf(v); !ok || got != "x" {
			t.Errorf("correct non-victim %d: delivered %q, %v; want \"x\"", v, got, ok)
		}
	}
	if _, ok := res.DecisionOf(2); ok {
		t.Error("eclipsed player 2 delivered despite total suppression")
	}
	if err := res.Metrics.Reconcile(); err != nil {
		t.Error(err)
	}
}

// TestInfeasibleBoundNobodyDelivers pins the other side of the bound: at
// n = 3t+2d the eclipse-plus-silence adversary starves the echo quorum
// (n−t−d = 2t+d < qE = 2t+d+1) and no correct player ever delivers.
func TestInfeasibleBoundNobodyDelivers(t *testing.T) {
	in := kInstance(t, 5, 1) // n=5 = 3t+2d with t=1, d=1
	res, err := mbrb.Run(in, "x", protocol.Silence(nodeset.Of(1)), mbrb.Options{
		MABudget:     1,
		MsgAdversary: network.NewEclipse(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Errorf("%d players delivered at the infeasible bound, want none: %v", len(res.Decisions), res.Decisions)
	}
}

// forger is a Byzantine process that floods forged echoes and readys for a
// value the dealer never sent, then goes silent.
type forger struct{ neighbors nodeset.Set }

func (f *forger) Init(out network.Outbox) {
	f.neighbors.ForEach(func(u int) bool {
		out(u, mbrb.Msg{Phase: mbrb.PhaseEcho, X: "evil"})
		out(u, mbrb.Msg{Phase: mbrb.PhaseReady, X: "evil"})
		out(u, mbrb.Msg{Phase: mbrb.PhaseInit, X: "evil"}) // non-dealer INIT: ignored
		return true
	})
}
func (f *forger) Round(int, []network.Message, network.Outbox) bool { return false }
func (f *forger) Decision() (network.Value, bool)                   { return "", false }

// TestForgedQuorumsCannotSubvert pins safety: t forged echo/ready senders
// stay below every quorum, so all honest players deliver the dealer's value.
func TestForgedQuorumsCannotSubvert(t *testing.T) {
	in := kInstance(t, 6, 1)
	corrupt := map[int]network.Process{1: &forger{neighbors: in.G.Neighbors(1)}}
	res, err := mbrb.Run(in, "x", corrupt, mbrb.Options{MABudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 2, 3, 4, 5} {
		if got, ok := res.DecisionOf(v); !ok || got != "x" {
			t.Errorf("player %d delivered %q, %v; want \"x\"", v, got, ok)
		}
	}
}

// TestQuorums pins the threshold arithmetic.
func TestQuorums(t *testing.T) {
	cases := []struct {
		n, t, d            int
		echo, amp, deliver int
	}{
		{4, 1, 0, 3, 2, 3},
		{6, 1, 1, 4, 2, 4},
		{10, 2, 1, 7, 3, 6},
		{8, 1, 2, 5, 2, 5},
	}
	for _, c := range cases {
		q := mbrb.NewQuorums(c.n, c.t, c.d)
		if q.Echo != c.echo || q.Amp != c.amp || q.Deliver != c.deliver {
			t.Errorf("NewQuorums(%d,%d,%d) = %+v, want {%d %d %d}",
				c.n, c.t, c.d, q, c.echo, c.amp, c.deliver)
		}
	}
	if got := mbrb.Threshold(kInstance(t, 8, 2)); got != 2 {
		t.Errorf("Threshold = %d, want 2", got)
	}
	if got := mbrb.Threshold(kInstance(t, 4, 0)); got != 0 {
		t.Errorf("Threshold of trivial structure = %d, want 0", got)
	}
}

// TestAssembleErrors covers the operating-assumption checks.
func TestAssembleErrors(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	path, err := instance.AdHoc(g, adversary.GlobalThreshold(nodeset.Empty(), 0), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mbrb.Run(path, "x", nil, mbrb.Options{}); err == nil {
		t.Error("incomplete network accepted")
	}
	if !mbrb.Complete(kInstance(t, 4, 1)) {
		t.Error("K4 reported incomplete")
	}
	if _, err := mbrb.Run(kInstance(t, 4, 1), "x", nil, mbrb.Options{MABudget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
}
