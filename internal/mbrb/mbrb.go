// Package mbrb implements a signature-free Byzantine Reliable Broadcast
// protocol for the message-adversary model (MBRB): besides up to t Byzantine
// players, a message adversary may suppress up to d copies of every
// broadcast (network.MessageAdversary). The protocol is the Bracha echo/ready
// scheme with quorums re-derived for the (n, t, d) parameter space, where the
// solvability bound is n > 3t + 2d (Albouy, Frey, Raynal, Taïani; see
// PAPERS.md): with n ≤ 3t + 2d no MBRB protocol exists, and above the bound
// this protocol guarantees at least ℓ = n − t − d honest deliveries.
//
// Protocol (code for player v on a complete network, dealer D, value x_D):
//
//  1. D broadcasts INIT(x_D); the INIT doubles as D's echo.
//  2. Upon INIT(x) from D, or upon t+1 echoes for x: if v has not echoed,
//     broadcast ECHO(x) and count v among x's echoers.
//  3. Upon qE = ⌊(n+t)/2⌋+1 echoes for x, or upon t+1 readys for x: if v
//     has not readied, broadcast READY(x) and count v among x's readiers.
//  4. Upon qD = 2t+d+1 readys for x: deliver x and halt.
//
// Every quorum counts distinct senders, the player itself included once it
// has sent the phase. Safety needs no suppression bound: t < t+1 forged
// readys can never amplify, and two echo quorums for different values would
// need 2·qE − n > t common senders. The d in qD buys delivery certainty
// under suppression: 2t+d+1 readys leave t+d+1 correct readiers, so every
// correct player eventually sees t+1 of them even if the adversary mutes d
// and the Byzantine players lie — the classic totality argument shifted by
// d. Liveness consumes the budget: with d copies of each broadcast
// suppressed, only the n − t − d correct players outside a worst-case
// eclipse are guaranteed to reach qE and qD (internal/feasibility's boundary
// battery pins both sides of the bound operationally).
package mbrb

import (
	"fmt"
	"sort"

	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
)

// Phase tags an MBRB message with its protocol step.
type Phase string

// The three MBRB message phases.
const (
	PhaseInit  Phase = "init"
	PhaseEcho  Phase = "echo"
	PhaseReady Phase = "ready"
)

// Msg is the one MBRB payload type: a phase-tagged value.
type Msg struct {
	Phase Phase
	X     network.Value
}

// BitSize implements network.Payload: the value plus a two-bit phase tag.
func (m Msg) BitSize() int { return 8*len(m.X) + 2 }

// Key implements network.Payload.
func (m Msg) Key() string { return "mbrb:" + string(m.Phase) + ":" + string(m.X) }

// Quorums are the three thresholds of an (n, t, d) MBRB run.
type Quorums struct {
	// Echo is qE = ⌊(n+t)/2⌋+1, the echo count that certifies a value: two
	// such quorums for different values would share more than t senders.
	Echo int
	// Amp is t+1, the count that proves at least one correct sender and so
	// lets echoes and readys amplify without a dealer INIT.
	Amp int
	// Deliver is qD = 2t+d+1, the ready count that makes delivery
	// irrevocable despite t Byzantine readiers and d suppressed copies.
	Deliver int
}

// NewQuorums derives the thresholds for an n-player run with at most t
// Byzantine players and a per-broadcast suppression budget of d.
func NewQuorums(n, t, d int) Quorums {
	return Quorums{Echo: (n+t)/2 + 1, Amp: t + 1, Deliver: 2*t + d + 1}
}

// Threshold extracts the t the instance's adversary structure corresponds
// to: the size of its largest corruption set. MBRB's quorum arithmetic is
// threshold-based, so general structures are conservatively rounded up.
func Threshold(in *instance.Instance) int {
	t := 0
	for _, m := range in.MaximalCorruptions() {
		if s := m.Len(); s > t {
			t = s
		}
	}
	return t
}

// Player is one MBRB player; the dealer is a player whose Init broadcasts
// INIT(x_D) and self-counts it as an echo.
type Player struct {
	id        int
	dealer    int
	value     network.Value // dealer's value; empty for non-dealers
	neighbors nodeset.Set
	q         Quorums

	echoes    map[network.Value]nodeset.Set
	readys    map[network.Value]nodeset.Set
	echoed    bool
	readied   bool
	delivered bool
	x         network.Value
}

// NewPlayer builds the process for node id of the instance with the given
// quorums; xD is non-empty exactly at the dealer.
func NewPlayer(in *instance.Instance, id int, xD network.Value, q Quorums) *Player {
	return &Player{
		id:        id,
		dealer:    in.Dealer,
		value:     xD,
		neighbors: in.G.Neighbors(id),
		q:         q,
		echoes:    make(map[network.Value]nodeset.Set),
		readys:    make(map[network.Value]nodeset.Set),
	}
}

// Init implements network.Process: the dealer broadcasts INIT, which counts
// as its echo; everyone else waits.
func (p *Player) Init(out network.Outbox) {
	if p.id != p.dealer {
		return
	}
	p.echoed = true
	p.count(p.echoes, p.id, p.value)
	p.broadcast(out, Msg{Phase: PhaseInit, X: p.value})
}

// Round implements network.Process.
func (p *Player) Round(_ int, inbox []network.Message, out network.Outbox) bool {
	if p.delivered {
		return false
	}
	for _, m := range inbox {
		msg, ok := m.Payload.(Msg)
		if !ok {
			continue // erroneous message; discard
		}
		switch msg.Phase {
		case PhaseInit:
			if m.From != p.dealer {
				continue // only the dealer's INIT carries weight
			}
			// The dealer's INIT is its echo, and prompts ours.
			p.count(p.echoes, m.From, msg.X)
			p.echo(out, msg.X)
		case PhaseEcho:
			p.count(p.echoes, m.From, msg.X)
		case PhaseReady:
			p.count(p.readys, m.From, msg.X)
		}
	}
	// Quorum checks run after the whole inbox is folded in, in sorted value
	// order, so every engine reaches identical verdicts.
	for _, x := range p.values(p.echoes) {
		if p.echoes[x].Len() >= p.q.Amp {
			p.echo(out, x) // self-count may complete the echo quorum below
		}
		if p.echoes[x].Len() >= p.q.Echo {
			p.ready(out, x)
		}
	}
	for _, x := range p.values(p.readys) {
		if p.readys[x].Len() >= p.q.Amp {
			p.ready(out, x)
		}
		if p.readys[x].Len() >= p.q.Deliver {
			p.delivered, p.x = true, x
			return false // deliver and halt
		}
	}
	return true
}

// Decision implements network.Process.
func (p *Player) Decision() (network.Value, bool) { return p.x, p.delivered }

func (p *Player) echo(out network.Outbox, x network.Value) {
	if p.echoed {
		return
	}
	p.echoed = true
	p.count(p.echoes, p.id, x)
	p.broadcast(out, Msg{Phase: PhaseEcho, X: x})
}

func (p *Player) ready(out network.Outbox, x network.Value) {
	if p.readied {
		return
	}
	p.readied = true
	p.count(p.readys, p.id, x)
	p.broadcast(out, Msg{Phase: PhaseReady, X: x})
}

func (p *Player) count(into map[network.Value]nodeset.Set, from int, x network.Value) {
	set, ok := into[x]
	if !ok {
		set = nodeset.Empty()
	}
	into[x] = set.Add(from)
}

func (p *Player) broadcast(out network.Outbox, m Msg) {
	p.neighbors.ForEach(func(u int) bool {
		out(u, m)
		return true
	})
}

// values returns the map's keys sorted, for deterministic quorum scans.
func (p *Player) values(m map[network.Value]nodeset.Set) []network.Value {
	vals := make([]network.Value, 0, len(m))
	for x := range m {
		vals = append(vals, x)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// NewProcesses assembles the MBRB process map for a run with suppression
// budget d: every node runs a player with (n, t, d) quorums, with the given
// corrupted overrides (the dealer and receiver cannot be corrupted).
func NewProcesses(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, d int) map[int]network.Process {
	q := NewQuorums(in.N(), Threshold(in), d)
	return protocol.Build(in.G, nodeset.Of(in.Dealer, in.Receiver), corrupt, func(v int) network.Process {
		val := network.Value("")
		if v == in.Dealer {
			val = xD
		}
		return NewPlayer(in, v, val, q)
	})
}

// Options is the unified option set; MBRB reads MABudget (the d its quorums
// provision for) and MsgAdversary in addition to the engine fields.
type Options = protocol.Options

// Proto is MBRB's registry entry; the package registers it under
// protocol.MBRB at init.
type Proto struct{}

// Name implements protocol.Protocol.
func (Proto) Name() string { return protocol.MBRB }

// Caps implements protocol.Protocol: MBRB is a broadcast (every honest
// player must decide) whose quorums count processes, not paths, so it runs
// on complete networks.
func (Proto) Caps() protocol.Caps { return protocol.Caps{AllDecide: true, CompleteGraph: true} }

// Assemble implements protocol.Protocol. The network must be complete: on a
// sparser graph the process-counting quorums are meaningless.
//
// Proto deliberately does not implement protocol.Feasibility: the tight
// n > 3t + 2d characterization holds for complete networks only, so the
// registry-level Solvable hook (which generic harnesses evaluate on
// arbitrary instances) would misreport. The predicate lives in
// internal/feasibility, guarded by the completeness check.
func (Proto) Assemble(in *instance.Instance, xD network.Value, opts protocol.Options) (map[int]network.Process, error) {
	if !Complete(in) {
		return nil, protocol.Capsf(protocol.MBRB, "network is not complete (n=%d); MBRB quorums count processes, not paths", in.N())
	}
	if opts.MABudget < 0 {
		return nil, fmt.Errorf("mbrb: negative suppression budget %d", opts.MABudget)
	}
	return NewProcesses(in, xD, opts.Corrupt, opts.MABudget), nil
}

// Complete reports whether the instance's network is a complete graph —
// MBRB's operating assumption.
func Complete(in *instance.Instance) bool {
	n := in.N()
	complete := true
	in.G.Nodes().ForEach(func(v int) bool {
		if in.G.Neighbors(v).Len() != n-1 {
			complete = false
			return false
		}
		return true
	})
	return complete
}

func init() { protocol.Register(Proto{}) }

// Run executes MBRB on the instance with dealer value xD, running until
// quiescence so every player can deliver. A non-nil corrupt map takes
// precedence over opts.Corrupt.
func Run(in *instance.Instance, xD network.Value, corrupt map[int]network.Process, opts Options) (*network.Result, error) {
	if corrupt != nil {
		opts.Corrupt = corrupt
	}
	return protocol.Run(Proto{}, in, xD, opts)
}
