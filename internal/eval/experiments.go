package eval

import (
	"fmt"
	"math/rand"

	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/zcpa"
)

// Params tunes the experiment suite. Zero values select the defaults used
// by EXPERIMENTS.md.
type Params struct {
	Seed   int64
	Trials int // random trials per configuration
	// Workers bounds the harness's worker pool; 0 uses one worker per
	// logical CPU. Tables are byte-identical at every worker count for a
	// fixed seed (see parallel.go).
	Workers int
	// Engine selects the execution engine for every protocol run of the
	// suite (nil = lockstep); resolve one with network.EngineByName. For
	// deterministic engines the tables are identical — that equivalence is
	// exactly what the conformance battery asserts.
	Engine network.Engine
	// Scheduler is the async engine's delivery policy (nil = SyncScheduler);
	// ignored by the synchronous engines.
	Scheduler network.Scheduler
}

// options seeds a protocol.Options with the suite-wide engine selection;
// experiment code fills in per-run fields.
func (p Params) options() protocol.Options {
	return protocol.Options{Engine: p.Engine, Scheduler: p.Scheduler}
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 2016 // PODC 2016
	}
	if p.Trials == 0 {
		p.Trials = 60
	}
	return p
}

// RunAll executes every experiment and returns the tables in index order.
func RunAll(p Params) []*Table {
	return []*Table{
		E1JoinAlgebra(p),
		E2PKATightness(p),
		E3Safety(p),
		E4ZCPATightness(p),
		E5KnowledgeSweep(p),
		E6MinimalKnowledge(p),
		E7DecisionProtocol(p),
		E8Scaling(p),
		E9BroadcastTightness(p),
		E10HorizonAblation(p),
		E11RepresentationAblation(p),
		E12Discovery(p),
		E13Exhaustive(p),
		F1BasicFrontier(p),
		F2IndistinguishableRuns(p),
	}
}

// E1JoinAlgebra validates the ⊕ algebra (Theorems 1, 11, 13, 14 and
// Corollary 2) on random structures, counting violations (all must be 0).
func E1JoinAlgebra(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E1",
		Title:   "⊕ join-view algebra (Thms 1, 11, 13, 14; Cor 2)",
		Columns: []string{"property", "trials", "violations"},
	}
	type violations struct{ commut, assoc, idem, maximal int }
	results := runTrials(p, 1, func(r *rand.Rand, _ int) violations {
		draw := func() adversary.Restricted {
			n := 3 + r.Intn(6)
			u := nodeset.Universe(n + 2)
			dom := nodeset.Empty()
			u.ForEach(func(v int) bool {
				if r.Intn(2) == 0 {
					dom = dom.Add(v)
				}
				return true
			})
			return adversary.Restricted{Domain: dom, Structure: adversary.Random(r, dom, 1+r.Intn(4), 0.4)}
		}
		var out violations
		a, b, c := draw(), draw(), draw()
		if !adversary.Join(a, b).Equal(adversary.Join(b, a)) {
			out.commut++
		}
		if !adversary.Join(adversary.Join(a, b), c).Equal(adversary.Join(a, adversary.Join(b, c))) {
			out.assoc++
		}
		if !adversary.Join(a, a).Equal(a) {
			out.idem++
		}
		// Corollary 2 on restrictions of one real structure.
		u := nodeset.Universe(8)
		z := adversary.Random(r, u, 3, 0.4)
		da, db := randomSubset(r, u), randomSubset(r, u)
		j := adversary.Join(z.RestrictTo(da), z.RestrictTo(db))
		if !z.Restrict(da.Union(db)).SubfamilyOf(j.Structure) {
			out.maximal++
		}
		return out
	})
	var commut, assoc, idem, maximal int
	for _, v := range results {
		commut += v.commut
		assoc += v.assoc
		idem += v.idem
		maximal += v.maximal
	}
	t.AddRow("commutativity (Thm 11)", p.Trials, commut)
	t.AddRow("associativity (Thm 13)", p.Trials, assoc)
	t.AddRow("idempotence (Thm 14)", p.Trials, idem)
	t.AddRow("Z^{A∪B} ⊆ Z^A⊕Z^B (Cor 2)", p.Trials, maximal)
	t.Notes = append(t.Notes, "expected: 0 violations in every row")
	return t
}

func randomSubset(r *rand.Rand, u nodeset.Set) nodeset.Set {
	s := nodeset.Empty()
	u.ForEach(func(v int) bool {
		if r.Intn(2) == 0 {
			s = s.Add(v)
		}
		return true
	})
	return s
}

// E2PKATightness cross-validates Theorems 3 & 5: RMT-cut existence must
// equal RMT-PKA failure, per knowledge level, over random instances.
func E2PKATightness(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E2",
		Title:   "RMT-cut ⇔ RMT-PKA failure (Thms 3 & 5 tightness)",
		Columns: []string{"knowledge", "instances", "solvable", "unsolvable", "mismatches"},
	}
	type verdict struct{ solvable, mismatch bool }
	for ki, k := range []gen.Knowledge{gen.AdHoc, gen.Radius2, gen.FullKnowledge} {
		k := k
		results := runTrials(p, 200+ki, func(r *rand.Rand, _ int) verdict {
			in := drawInstance(r, func(r *rand.Rand) (*instance.Instance, error) {
				return gen.RandomInstance(r, 4+r.Intn(3), 0.5, 1+r.Intn(2), 0.4, k)
			})
			cutFree := core.Solvable(in)
			ok, err := core.Resilient(in)
			if err != nil {
				panic(err)
			}
			return verdict{solvable: cutFree, mismatch: cutFree != ok}
		})
		var solvable, unsolvable, mismatches int
		for _, v := range results {
			if v.mismatch {
				mismatches++
			}
			if v.solvable {
				solvable++
			} else {
				unsolvable++
			}
		}
		t.AddRow(k.String(), len(results), solvable, unsolvable, mismatches)
	}
	t.Notes = append(t.Notes, "expected: 0 mismatches — the condition is tight at every knowledge level")
	return t
}

// drawInstance retries a random-instance generator until it produces a valid
// instance. Retrying inside the trial (instead of skipping the trial, as the
// sequential harness did) keeps each trial self-contained so trials can run
// on any worker without sharing RNG state.
func drawInstance(r *rand.Rand, mk func(r *rand.Rand) (*instance.Instance, error)) *instance.Instance {
	for {
		in, err := mk(r)
		if err == nil {
			return in
		}
	}
}

// E3Safety runs the full Byzantine strategy zoo against RMT-PKA and counts
// wrong receiver decisions (Theorem 4: must be 0, even on unsolvable
// instances and against fictitious topology).
func E3Safety(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E3",
		Title:   "RMT-PKA safety under the Byzantine strategy zoo (Thm 4)",
		Columns: []string{"instance", "strategy", "runs", "correct", "undecided", "wrong"},
	}
	fixtures := safetyFixtures()
	for _, fx := range fixtures {
		perStrategy := map[string]*[3]int{}
		for _, m := range fx.in.MaximalCorruptions() {
			if m.IsEmpty() {
				continue
			}
			zoo := core.Strategies(fx.in, m, "forged")
			for name, corrupt := range zoo {
				opts := p.options()
				opts.Corrupt = corrupt
				res, err := protocol.RunByName(protocol.PKA, fx.in, "real", opts)
				if err != nil {
					panic(err)
				}
				c := perStrategy[name]
				if c == nil {
					c = &[3]int{}
					perStrategy[name] = c
				}
				if got, ok := res.DecisionOf(fx.in.Receiver); !ok {
					c[1]++
				} else if got == "real" {
					c[0]++
				} else {
					c[2]++
				}
			}
		}
		for _, name := range []string{"silent", "value-flip", "path-forgery", "ghost-node", "split-brain", "structure-liar"} {
			c := perStrategy[name]
			if c == nil {
				continue
			}
			t.AddRow(fx.name, name, c[0]+c[1]+c[2], c[0], c[1], c[2])
		}
	}
	t.Notes = append(t.Notes, "expected: 0 in the wrong column everywhere (safety)")
	t.Notes = append(t.Notes, "undecided > 0 is expected on the unsolvable fixture — safety over liveness")
	return t
}

type fixture struct {
	name string
	in   *instance.Instance
}

func safetyFixtures() []fixture {
	g1, d1, r1 := gen.DisjointPaths(3, 1)
	z1 := gen.Singletons(g1.Nodes().Minus(nodeset.Of(d1, r1)))
	in1, err := gen.Build(g1, z1, gen.AdHoc, d1, r1)
	if err != nil {
		panic(err)
	}
	g2, d2, r2 := gen.DisjointPaths(2, 1)
	z2 := gen.Singletons(g2.Nodes().Minus(nodeset.Of(d2, r2)))
	in2, err := gen.Build(g2, z2, gen.AdHoc, d2, r2)
	if err != nil {
		panic(err)
	}
	g3, z3, d3, r3 := gen.Chimera()
	in3, err := gen.Build(g3, z3, gen.Radius2, d3, r3)
	if err != nil {
		panic(err)
	}
	return []fixture{
		{"triple-path (solvable)", in1},
		{"weak-diamond (unsolvable)", in2},
		{"chimera radius-2 (solvable)", in3},
	}
}

// E4ZCPATightness cross-validates Theorems 7 & 8 in the ad hoc model:
// RMT Z-pp cut existence must equal Z-CPA failure.
func E4ZCPATightness(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E4",
		Title:   "RMT Z-pp cut ⇔ Z-CPA failure (Thms 7 & 8 tightness, ad hoc)",
		Columns: []string{"n", "instances", "solvable", "unsolvable", "mismatches"},
	}
	type verdict struct{ solvable, mismatch bool }
	for _, n := range []int{4, 5, 6, 7} {
		n := n
		results := runTrials(p, 400+n, func(r *rand.Rand, _ int) verdict {
			in := drawInstance(r, func(r *rand.Rand) (*instance.Instance, error) {
				return gen.RandomInstance(r, n, 0.5, 1+r.Intn(3), 0.4, gen.AdHoc)
			})
			cutFree := zcpa.Solvable(in)
			ok, err := zcpa.Resilient(in)
			if err != nil {
				panic(err)
			}
			return verdict{solvable: cutFree, mismatch: cutFree != ok}
		})
		var solvable, unsolvable, mismatches int
		for _, v := range results {
			if v.mismatch {
				mismatches++
			}
			if v.solvable {
				solvable++
			} else {
				unsolvable++
			}
		}
		t.AddRow(n, len(results), solvable, unsolvable, mismatches)
	}
	t.Notes = append(t.Notes, "expected: 0 mismatches")
	return t
}

// E5KnowledgeSweep measures solvability across knowledge levels on the
// chimera family and random graphs: more knowledge never hurts and the
// chimera family separates ad hoc from radius 2 (Cor 6 / uniqueness
// consequences).
func E5KnowledgeSweep(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E5",
		Title:   "solvability by knowledge level (uniqueness / Cor 6)",
		Columns: []string{"family", "adhoc", "radius1", "radius2", "radius3", "full", "monotone?"},
	}
	families := []struct {
		name      string
		instances func() []*instance.Instance
	}{
		{"chimera(k=2)", func() []*instance.Instance { return chimeraInstances(2) }},
		{"chimera(k=3)", func() []*instance.Instance { return chimeraInstances(3) }},
		{"chimera(k=4)", func() []*instance.Instance { return chimeraInstances(4) }},
		{"random(n=6)", func() []*instance.Instance { return randomPerLevel(p, 6, p.Trials/3) }},
	}
	for _, fam := range families {
		ins := fam.instances()
		counts := make([]int, len(gen.Levels()))
		monotone := true
		perInstance := len(ins) / len(gen.Levels())
		solv := parallelMap(len(ins), p.workers(), func(i int) bool { return core.Solvable(ins[i]) })
		for i := range ins {
			level := i % len(gen.Levels())
			if solv[i] {
				counts[level]++
			}
		}
		for i := 1; i < len(counts); i++ {
			if counts[i] < counts[i-1] {
				monotone = false
			}
		}
		frac := func(c int) string {
			if perInstance == 0 {
				return "-"
			}
			return fmt.Sprintf("%d/%d", c, perInstance)
		}
		t.AddRow(fam.name, frac(counts[0]), frac(counts[1]), frac(counts[2]), frac(counts[3]), frac(counts[4]), monotone)
	}
	t.Notes = append(t.Notes,
		"expected: chimera rows flip from unsolvable (adhoc) to solvable (radius2+)",
		"expected: monotone? = true — refining knowledge never loses solvability")
	return t
}

func chimeraInstances(k int) []*instance.Instance {
	g, z, d, r := gen.ChimeraScaled(k)
	out := make([]*instance.Instance, 0, len(gen.Levels()))
	for _, lvl := range gen.Levels() {
		in, err := gen.Build(g, z, lvl, d, r)
		if err != nil {
			panic(err)
		}
		out = append(out, in)
	}
	return out
}

func randomPerLevel(p Params, n, trials int) []*instance.Instance {
	perTrial := parallelMap(trials, p.workers(), func(t int) []*instance.Instance {
		r := rand.New(rand.NewSource(trialSeed(p.Seed, 500, t)))
		g := gen.RandomGNP(r, n, 0.5)
		z := adversary.Random(r, g.Nodes().Minus(nodeset.Of(0, n-1)), 2, 0.35)
		batch := make([]*instance.Instance, 0, len(gen.Levels()))
		for _, lvl := range gen.Levels() {
			in, err := gen.Build(g, z, lvl, 0, n-1)
			if err != nil {
				panic(err)
			}
			batch = append(batch, in)
		}
		return batch
	})
	var out []*instance.Instance
	for _, batch := range perTrial {
		out = append(out, batch...)
	}
	return out
}

// E6MinimalKnowledge finds, per instance family, the minimal view radius at
// which RMT becomes solvable — the paper's "minimal amount of initial
// knowledge" (end of Section 3).
func E6MinimalKnowledge(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E6",
		Title:   "minimal knowledge radius for solvability (Sec. 3)",
		Columns: []string{"family", "diameter", "minimal radius", "solvable at full?"},
	}
	cases := []struct {
		name   string
		mk     func() (*instance.Instance, func(radius int) *instance.Instance)
		maxRad int
	}{
		{"chimera(k=2)", chimeraAtRadius(2), 4},
		{"chimera(k=3)", chimeraAtRadius(3), 4},
		{"chimera(k=4)", chimeraAtRadius(4), 4},
		{"weak-diamond", weakDiamondAtRadius(), 3},
		{"triple-path", triplePathAtRadius(), 3},
	}
	for _, c := range cases {
		full, at := c.mk()
		minRadius := -1
		for rad := 0; rad <= c.maxRad; rad++ {
			if core.Solvable(at(rad)) {
				minRadius = rad
				break
			}
		}
		radStr := "unsolvable"
		if minRadius >= 0 {
			radStr = fmt.Sprint(minRadius)
		}
		t.AddRow(c.name, full.G.Diameter(), radStr, core.Solvable(full))
	}
	t.Notes = append(t.Notes,
		"chimera families need radius 2 — the receiver must see both halves of the chimera set",
		"weak-diamond stays unsolvable at every radius: the cut is information-theoretic")
	return t
}

func chimeraAtRadius(k int) func() (*instance.Instance, func(int) *instance.Instance) {
	return func() (*instance.Instance, func(int) *instance.Instance) {
		g, z, d, r := gen.ChimeraScaled(k)
		full, err := gen.Build(g, z, gen.FullKnowledge, d, r)
		if err != nil {
			panic(err)
		}
		return full, func(radius int) *instance.Instance {
			in, err := instance.New(g, z, radiusView(g, radius), d, r)
			if err != nil {
				panic(err)
			}
			return in
		}
	}
}

func weakDiamondAtRadius() func() (*instance.Instance, func(int) *instance.Instance) {
	return func() (*instance.Instance, func(int) *instance.Instance) {
		g, d, r := gen.DisjointPaths(2, 1)
		z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
		full, err := gen.Build(g, z, gen.FullKnowledge, d, r)
		if err != nil {
			panic(err)
		}
		return full, func(radius int) *instance.Instance {
			in, err := instance.New(g, z, radiusView(g, radius), d, r)
			if err != nil {
				panic(err)
			}
			return in
		}
	}
}

func triplePathAtRadius() func() (*instance.Instance, func(int) *instance.Instance) {
	return func() (*instance.Instance, func(int) *instance.Instance) {
		g, d, r := gen.DisjointPaths(3, 1)
		z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
		full, err := gen.Build(g, z, gen.FullKnowledge, d, r)
		if err != nil {
			panic(err)
		}
		return full, func(radius int) *instance.Instance {
			in, err := instance.New(g, z, radiusView(g, radius), d, r)
			if err != nil {
				panic(err)
			}
			return in
		}
	}
}
