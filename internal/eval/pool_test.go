package eval

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolRunsEveryAdmittedJob: every TrySubmit that returns true executes
// exactly once, and Close drains the queue before returning.
func TestPoolRunsEveryAdmittedJob(t *testing.T) {
	p := NewPool(4, 64)
	var ran atomic.Int64
	admitted := 0
	for i := 0; i < 200; i++ {
		if p.TrySubmit(func() { ran.Add(1) }) {
			admitted++
		}
	}
	p.Close()
	if int(ran.Load()) != admitted {
		t.Fatalf("admitted %d jobs, ran %d", admitted, ran.Load())
	}
	if admitted == 0 {
		t.Fatal("no job was admitted")
	}
}

// TestPoolBackpressure: with every worker blocked and the queue full,
// TrySubmit sheds load instead of blocking — the 429 path of the daemon.
func TestPoolBackpressure(t *testing.T) {
	const workers, queue = 2, 3
	p := NewPool(workers, queue)
	release := make(chan struct{})
	var started sync.WaitGroup
	started.Add(workers)
	for i := 0; i < workers; i++ {
		if !p.TrySubmit(func() { started.Done(); <-release }) {
			t.Fatal("pool rejected a job while idle")
		}
	}
	started.Wait() // both workers now blocked
	for i := 0; i < queue; i++ {
		if !p.TrySubmit(func() {}) {
			t.Fatalf("queue slot %d rejected", i)
		}
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("pool admitted a job beyond workers+queue while saturated")
	}
	if got := p.Depth(); got != workers+queue {
		t.Fatalf("Depth() = %d, want %d", got, workers+queue)
	}
	close(release)
	p.Close()
	if got := p.Depth(); got != 0 {
		t.Fatalf("Depth() after drain = %d", got)
	}
}

// TestPoolCloseRejectsNewJobs: submissions racing Close either run or are
// rejected — never lost, never panicking on a closed channel.
func TestPoolCloseRejectsNewJobs(t *testing.T) {
	p := NewPool(2, 8)
	var ran atomic.Int64
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if p.TrySubmit(func() { ran.Add(1) }) {
					admitted.Add(1)
				}
				time.Sleep(time.Microsecond)
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	p.Close()
	wg.Wait()
	if ran.Load() != admitted.Load() {
		t.Fatalf("admitted %d, ran %d", admitted.Load(), ran.Load())
	}
	if p.TrySubmit(func() {}) {
		t.Fatal("TrySubmit after Close must return false")
	}
}
