package eval

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the harness's worker pool. Experiments fan their independent
// trials across workers with parallelMap/runTrials; determinism is preserved
// by construction:
//
//   - every trial draws from its own rand.Rand, seeded by trialSeed(seed,
//     stream, trial) — no RNG is shared between trials, so scheduling cannot
//     reorder draws;
//   - results are written to the trial's own slice slot and aggregated in
//     trial order after the pool drains.
//
// Tables therefore render byte-identical for a fixed seed at every worker
// count, including Workers=1 (asserted by TestParallelTablesDeterministic).

// workers resolves Params.Workers: 0 means one worker per logical CPU.
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// trialSeed derives the RNG seed for one trial of one experiment stream,
// decorrelating (seed, stream, trial) triples with a splitmix64 finalizer.
func trialSeed(seed int64, stream, trial int) int64 {
	x := uint64(seed)
	x += 0x9e3779b97f4a7c15 * uint64(stream+1)
	x += 0xd1b54a32d192ed03 * uint64(trial+1)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int64(x >> 1) // non-negative
}

// parallelMap computes fn(0..n-1) across at most `workers` goroutines and
// returns the results in index order. fn must be safe for concurrent calls;
// with workers ≤ 1 everything runs on the calling goroutine.
func parallelMap[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runTrials runs p.Trials independent trials of one experiment stream on
// the worker pool, handing each trial its own deterministically seeded RNG.
func runTrials[T any](p Params, stream int, fn func(r *rand.Rand, trial int) T) []T {
	return parallelMap(p.Trials, p.workers(), func(i int) T {
		return fn(rand.New(rand.NewSource(trialSeed(p.Seed, stream, i))), i)
	})
}

// TrialSeed exposes the per-trial seed derivation for other deterministic
// harnesses (the attack safety sweep), so every randomized driver in the
// repository decorrelates (seed, stream, trial) the same way.
func TrialSeed(seed int64, stream, trial int) int64 { return trialSeed(seed, stream, trial) }

// ParallelMap exposes the worker pool for other deterministic harnesses:
// fn(0..n-1) computed across at most `workers` goroutines (≤ 0 means one
// per logical CPU, as with Params.Workers), results in index order.
func ParallelMap[T any](n, workers int, fn func(i int) T) []T {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return parallelMap(n, workers, fn)
}
