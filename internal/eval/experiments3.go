package eval

import (
	"fmt"
	"math/rand"
	"time"

	"rmt/internal/adversary"
	"rmt/internal/broadcast"
	"rmt/internal/byzantine"
	"rmt/internal/core"
	"rmt/internal/discovery"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/protocol"
	"rmt/internal/view"
)

// E9BroadcastTightness cross-validates the Definition-10 𝒵-pp cut for
// Reliable Broadcast (the paper's root setting, [13]) against operational
// resilience of 𝒵-CPA broadcast over all admissible corruption sets.
func E9BroadcastTightness(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E9",
		Title:   "broadcast Z-pp cut ⇔ Z-CPA broadcast failure (Def 10, [13])",
		Columns: []string{"n", "instances", "solvable", "unsolvable", "mismatches"},
	}
	type verdict struct{ solvable, mismatch bool }
	for _, n := range []int{4, 5, 6} {
		n := n
		results := runTrials(p, 900+n, func(r *rand.Rand, _ int) verdict {
			var in *broadcast.Instance
			for {
				g := gen.RandomGNP(r, n, 0.5)
				z := adversary.Random(r, g.Nodes().Remove(0), 1+r.Intn(2), 0.35)
				b, err := broadcast.New(g, z, 0)
				if err == nil {
					in = b
					break
				}
			}
			cutFree := broadcast.Solvable(in)
			ok, err := broadcast.Resilient(in)
			if err != nil {
				panic(err)
			}
			return verdict{solvable: cutFree, mismatch: cutFree != ok}
		})
		var solvable, unsolvable, mismatches int
		for _, v := range results {
			if v.mismatch {
				mismatches++
			}
			if v.solvable {
				solvable++
			} else {
				unsolvable++
			}
		}
		t.AddRow(n, len(results), solvable, unsolvable, mismatches)
	}
	t.Notes = append(t.Notes,
		"expected: 0 mismatches",
		"resilience is checked over ALL corruption sets: broadcast liveness is not monotone in T")
	return t
}

// E10HorizonAblation measures the Horizon-PKA ablation: message/bit savings
// versus solvability loss as the path-length bound tightens.
func E10HorizonAblation(p Params) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "Horizon-PKA ablation: bounded-path flooding vs full RMT-PKA",
		Columns: []string{"topology", "horizon", "messages", "bits", "decided", "msg savings"},
	}
	cases := []struct {
		name     string
		mk       func() (*instance.Instance, int)
		horizons []int
	}{
		{"layered-2x3", func() (*instance.Instance, int) {
			g, d, r := gen.Layered(2, 3)
			in, err := instance.New(g, adversary.Trivial(), view.AdHoc(g), d, r)
			if err != nil {
				panic(err)
			}
			return in, r
		}, []int{0, 6, 5, 4}},
		{"layered-3x2", func() (*instance.Instance, int) {
			g, d, r := gen.Layered(3, 2)
			in, err := instance.New(g, adversary.Trivial(), view.AdHoc(g), d, r)
			if err != nil {
				panic(err)
			}
			return in, r
		}, []int{0, 7, 5}},
		{"line-7", func() (*instance.Instance, int) {
			g := gen.Line(7)
			in, err := instance.New(g, adversary.Trivial(), view.AdHoc(g), 0, 6)
			if err != nil {
				panic(err)
			}
			return in, 6
		}, []int{0, 7, 6}},
	}
	for _, c := range cases {
		in, rcv := c.mk()
		base := -1
		for _, h := range c.horizons {
			opts := p.options()
			opts.Horizon = h
			res, err := protocol.RunByName(protocol.PKA, in, "x", opts)
			if err != nil {
				panic(err)
			}
			if h == 0 {
				base = res.Metrics.MessagesSent
			}
			_, decided := res.DecisionOf(rcv)
			savings := "-"
			if h != 0 && base > 0 {
				savings = fmt.Sprintf("%.0f%%", 100*(1-float64(res.Metrics.MessagesSent)/float64(base)))
			}
			label := "∞"
			if h > 0 {
				label = fmt.Sprint(h)
			}
			t.AddRow(c.name, label, res.Metrics.MessagesSent, res.Metrics.BitsSent, decided, savings)
		}
	}
	t.Notes = append(t.Notes,
		"horizon = max D-R path length in nodes; ∞ = standard RMT-PKA",
		"tight horizons cut messages sharply but may abstain (liveness traded, never safety)")
	return t
}

// E11RepresentationAblation times the antichain ⊕ against the brute-force
// member-enumeration semantics of Definition 2 — the design choice DESIGN.md
// §4 calls out.
func E11RepresentationAblation(p Params) *Table {
	p = p.withDefaults()
	r := rand.New(rand.NewSource(p.Seed + 11))
	t := &Table{
		ID:      "E11",
		Title:   "⊕ representation ablation: antichain vs Definition-2 enumeration",
		Columns: []string{"|universe|", "maximal sets", "antichain µs/op", "brute µs/op", "speedup"},
	}
	for _, n := range []int{6, 8, 10, 12} {
		u := nodeset.Universe(n)
		z := adversary.Random(r, u, 4, 0.4)
		a := z.RestrictTo(nodeset.Range(0, n*2/3))
		b := z.RestrictTo(nodeset.Range(n/3, n))

		reps := 200
		start := time.Now()
		for i := 0; i < reps; i++ {
			adversary.Join(a, b)
		}
		fastNs := time.Since(start).Nanoseconds() / int64(reps)

		start = time.Now()
		bruteReps := 5
		for i := 0; i < bruteReps; i++ {
			joinBrute(a, b)
		}
		slowNs := time.Since(start).Nanoseconds() / int64(bruteReps)

		speedup := fmt.Sprintf("%dx", slowNs/max64(fastNs, 1))
		t.AddRow(n, z.NumMaximal(),
			fmt.Sprintf("%.1f", float64(fastNs)/1e3),
			fmt.Sprintf("%.1f", float64(slowNs)/1e3),
			speedup)
	}
	t.Notes = append(t.Notes,
		"both computations are asserted equal in the adversary package's property tests",
		"the antichain form is what makes Z_B folds over large B affordable")
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// joinBrute is the Definition-2 literal semantics (duplicated from the
// adversary tests so the experiment is self-contained).
func joinBrute(e, f adversary.Restricted) adversary.Restricted {
	var result []nodeset.Set
	e.Structure.Members(func(z1 nodeset.Set) bool {
		f.Structure.Members(func(z2 nodeset.Set) bool {
			if z1.Intersect(f.Domain).Equal(z2.Intersect(e.Domain)) {
				result = append(result, z1.Union(z2))
			}
			return true
		})
		return true
	})
	return adversary.Restricted{Domain: e.Domain.Union(f.Domain), Structure: adversary.FromSets(result...)}
}

// E12Discovery measures Byzantine topology discovery (the conclusions'
// application direction): per adversary strategy, how much of the real
// topology the observer confirms and what gets flagged.
func E12Discovery(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E12",
		Title:   "Byzantine topology discovery (conclusions: ⊕ beyond RMT)",
		Columns: []string{"strategy", "runs", "honest edges confirmed", "fake edges accepted", "contested flagged"},
	}
	type counter struct{ runs, confirmed, confirmable, fake, contested int }
	order := []string{"honest", "silent", "fake-edge", "split-brain"}
	results := runTrials(p, 1200, func(r *rand.Rand, _ int) map[string]counter {
		var g *graph.Graph
		var n int
		for {
			n = 5 + r.Intn(3)
			g = gen.RandomGNP(r, n, 0.5)
			if g.ComponentOf(0).Equal(g.Nodes()) {
				break
			}
		}
		corruptNode := 1 + r.Intn(n-1)
		z := adversary.FromSets(nodeset.Of(corruptNode))
		gamma := view.AdHoc(g)
		counters := map[string]counter{}
		for _, strat := range order {
			var corrupt map[int]network.Process
			fakeU, fakeV := pickNonEdge(r, g, corruptNode)
			switch strat {
			case "honest":
			case "silent":
				corrupt = byzantine.SilentProcesses(nodeset.Of(corruptNode))
			case "fake-edge":
				if fakeU < 0 {
					continue
				}
				fakeView := gamma.Of(corruptNode).Clone()
				fakeView.AddEdge(fakeU, fakeV)
				info := core.NodeInfo{Node: corruptNode, View: fakeView, Z: gamma.LocalStructure(z, corruptNode)}
				corrupt = map[int]network.Process{
					corruptNode: core.NewRelayAt(corruptNode, g.Neighbors(corruptNode), info),
				}
			case "split-brain":
				corrupt = map[int]network.Process{
					corruptNode: splitBrainDiscovery(g, gamma, z, corruptNode),
				}
			}
			res, err := discovery.Run(g, z, gamma, 0, corrupt, nil)
			if err != nil {
				panic(err)
			}
			c := counters[strat]
			c.runs++
			honest := g.Nodes().Remove(corruptNode)
			reachable := g.RemoveNodes(nodeset.Of(corruptNode)).ComponentOf(0)
			for _, e := range g.Edges() {
				if honest.Contains(e[0]) && honest.Contains(e[1]) &&
					reachable.Contains(e[0]) && reachable.Contains(e[1]) {
					c.confirmable++
					if res.Confirmed.HasEdge(e[0], e[1]) {
						c.confirmed++
					}
				}
			}
			for _, e := range res.Confirmed.Edges() {
				if !g.HasEdge(e[0], e[1]) {
					c.fake++
				}
			}
			c.contested += res.Contested.Len()
			counters[strat] = c
		}
		return counters
	})
	for _, strat := range order {
		var c counter
		for _, m := range results {
			s := m[strat]
			c.runs += s.runs
			c.confirmed += s.confirmed
			c.confirmable += s.confirmable
			c.fake += s.fake
			c.contested += s.contested
		}
		t.AddRow(strat, c.runs, fmt.Sprintf("%d/%d", c.confirmed, c.confirmable), c.fake, c.contested)
	}
	t.Notes = append(t.Notes,
		"expected: fake edges accepted = 0 (bilateral confirmation), honest edges fully confirmed",
		"split-brain claimers surface in the contested column")
	return t
}

func pickNonEdge(r *rand.Rand, g interface {
	HasEdge(u, v int) bool
	NumNodes() int
	Nodes() nodeset.Set
}, exclude int) (int, int) {
	ids := g.Nodes().Members()
	for tries := 0; tries < 50; tries++ {
		u := ids[r.Intn(len(ids))]
		v := ids[r.Intn(len(ids))]
		if u != v && u != exclude && v != exclude && !g.HasEdge(u, v) {
			return u, v
		}
	}
	return -1, -1
}

func splitBrainDiscovery(g interface {
	Neighbors(v int) nodeset.Set
}, gamma view.Function, z adversary.Structure, id int) network.Process {
	honest := core.NodeInfo{Node: id, View: gamma.Of(id), Z: gamma.LocalStructure(z, id)}
	fakeView := gamma.Of(id).Clone()
	fakeView.AddEdge(id, id+100)
	lying := core.NodeInfo{Node: id, View: fakeView, Z: gamma.LocalStructure(z, id)}
	per := map[int][]network.Payload{}
	i := 0
	g.Neighbors(id).ForEach(func(u int) bool {
		ni := honest
		if i%2 == 1 {
			ni = lying
		}
		per[u] = []network.Payload{core.InfoMsg{Info: ni, P: graph.Path{id}}}
		i++
		return true
	})
	return &core.Forger{ID: id, Neighbors: g.Neighbors(id), InitPer: per}
}
