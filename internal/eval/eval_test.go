package eval

import (
	"strings"
	"testing"
)

func fast() Params { return Params{Seed: 2016, Trials: 20} }

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Columns) {
		t.Fatalf("table %s has no cell (%d,%d)", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func TestE1NoViolations(t *testing.T) {
	tab := E1JoinAlgebra(fast())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		if row[2] != "0" {
			t.Errorf("row %d (%s): %s violations", i, row[0], row[2])
		}
	}
}

func TestE2NoMismatches(t *testing.T) {
	tab := E2PKATightness(fast())
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("knowledge %s: %s mismatches — tightness broken", row[0], row[4])
		}
		if row[1] == "0" {
			t.Errorf("knowledge %s: no instances tested", row[0])
		}
	}
}

func TestE3ZeroWrongDecisions(t *testing.T) {
	tab := E3Safety(fast())
	if len(tab.Rows) == 0 {
		t.Fatal("no safety rows")
	}
	sawUndecided := false
	for _, row := range tab.Rows {
		if row[5] != "0" {
			t.Errorf("%s/%s: %s WRONG decisions — safety violated", row[0], row[1], row[5])
		}
		if row[4] != "0" {
			sawUndecided = true
		}
	}
	if !sawUndecided {
		t.Error("expected some undecided runs on the unsolvable fixture")
	}
}

func TestE4NoMismatches(t *testing.T) {
	tab := E4ZCPATightness(fast())
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("n=%s: %s mismatches", row[0], row[4])
		}
	}
}

func TestE5ChimeraSeparatesAndMonotone(t *testing.T) {
	tab := E5KnowledgeSweep(fast())
	for _, row := range tab.Rows {
		if row[6] != "true" {
			t.Errorf("family %s: knowledge not monotone", row[0])
		}
		if strings.HasPrefix(row[0], "chimera") {
			if row[1] != "0/1" {
				t.Errorf("family %s solvable ad hoc: %s", row[0], row[1])
			}
			if row[3] != "1/1" {
				t.Errorf("family %s not solvable at radius2: %s", row[0], row[3])
			}
		}
	}
}

func TestE6MinimalKnowledge(t *testing.T) {
	tab := E6MinimalKnowledge(fast())
	want := map[string]string{
		"chimera(k=2)": "2",
		"chimera(k=3)": "2",
		"chimera(k=4)": "2",
		"weak-diamond": "unsolvable",
		"triple-path":  "1",
	}
	for _, row := range tab.Rows {
		if w, ok := want[row[0]]; ok && row[2] != w {
			t.Errorf("%s minimal radius = %s, want %s", row[0], row[2], w)
		}
	}
}

func TestE7FullAgreement(t *testing.T) {
	tab := E7DecisionProtocol(fast())
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Errorf("attack %s: %s disagreements between Π-simulation and direct oracle", row[0], row[3])
		}
		if row[1] == "0" {
			t.Errorf("attack %s: no runs", row[0])
		}
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8Scaling(fast())
	// Collect Z-CPA line rows: messages must grow linearly (exactly: each
	// player sends ≤ deg messages once → ~2 per node on a line).
	var lineZ []int
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[3]] = row
		if strings.HasPrefix(row[0], "line-") && row[3] == "Z-CPA" {
			lineZ = append(lineZ, atoiOrFail(t, row[5]))
		}
		if row[7] != "true" {
			t.Errorf("%s/%s: receiver undecided on a trivially solvable instance", row[0], row[3])
		}
	}
	for i := 1; i < len(lineZ); i++ {
		if lineZ[i] <= lineZ[i-1] {
			t.Errorf("Z-CPA line messages not increasing: %v", lineZ)
		}
	}
	// On layered-3x3 (27 paths) PKA must send far more messages than Z-CPA.
	z3 := atoiOrFail(t, byKey["layered-3x3/Z-CPA"][5])
	p3 := atoiOrFail(t, byKey["layered-3x3/RMT-PKA"][5])
	if p3 < 5*z3 {
		t.Errorf("PKA messages (%d) not dominating Z-CPA (%d) on layered-3x3", p3, z3)
	}
}

func atoiOrFail(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestF1Frontier(t *testing.T) {
	tab := F1BasicFrontier(fast())
	for _, row := range tab.Rows {
		k := atoiOrFail(t, row[0])
		thr := atoiOrFail(t, row[1])
		wantSolvable := 2*thr < k
		if (row[3] == "true") != wantSolvable {
			t.Errorf("k=%d t=%d: solvable=%s, want %v", k, thr, row[3], wantSolvable)
		}
		if row[4] != row[3] {
			t.Errorf("k=%d t=%d: Π success %s != solvable %s", k, thr, row[4], row[3])
		}
	}
}

func TestF2ViewsEqual(t *testing.T) {
	tab := F2IndistinguishableRuns(fast())
	for _, row := range tab.Rows {
		if row[2] != "true" {
			t.Errorf("%s: views not equal", row[0])
		}
		if row[3] != "true" {
			t.Errorf("%s: decisions differ across indistinguishable views", row[0])
		}
	}
}

func TestRunAllAndRender(t *testing.T) {
	tables := RunAll(fast())
	if len(tables) != 15 {
		t.Fatalf("RunAll returned %d tables", len(tables))
	}
	var sb strings.Builder
	seen := map[string]bool{}
	for _, tab := range tables {
		if seen[tab.ID] {
			t.Errorf("duplicate table ID %s", tab.ID)
		}
		seen[tab.ID] = true
		tab.Render(&sb)
	}
	out := sb.String()
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "F1", "F2"} {
		if !strings.Contains(out, "== "+id) {
			t.Errorf("render missing table %s", id)
		}
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{ID: "X", Title: "t", Columns: []string{"a", "long-column"}}
	tab.AddRow("wide-cell-content", 1)
	tab.Notes = append(tab.Notes, "a note")
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "wide-cell-content") || !strings.Contains(out, "note: a note") {
		t.Fatalf("render output:\n%s", out)
	}
}
