package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the long-lived sibling of parallelMap: a fixed set of worker
// goroutines draining a bounded job queue. parallelMap fans a known batch
// of trials out and joins; Pool serves an open-ended stream of jobs
// arriving over time — the shape a daemon needs — while keeping the same
// two guarantees the batch pool gives the experiment harness: a hard bound
// on concurrent work (Workers) and a hard bound on admitted-but-unstarted
// work (the queue), so overload is rejected at the door (TrySubmit
// returning false, which the rmtd server maps to HTTP 429) instead of
// accumulating unbounded goroutines or latency.
type Pool struct {
	mu      sync.RWMutex // guards closed vs. concurrent TrySubmit sends
	closed  bool
	jobs    chan func()
	wg      sync.WaitGroup
	depth   atomic.Int64 // queued + running jobs
	workers int
}

// NewPool starts a pool of `workers` goroutines (≤ 0 means one per logical
// CPU, as with Params.Workers) behind a queue of `queueDepth` waiting jobs
// (≥ 0; 0 means a job is only admitted when a worker is free to take it).
func NewPool(workers, queueDepth int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	p := &Pool{jobs: make(chan func(), queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
				p.depth.Add(-1)
			}
		}()
	}
	return p
}

// TrySubmit offers a job to the pool. It returns false — without blocking —
// when the queue is full or the pool is closed; the caller decides how to
// shed the load. A true return guarantees the job will run (exactly once).
func (p *Pool) TrySubmit(job func()) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	select {
	case p.jobs <- job:
		p.depth.Add(1)
		return true
	default:
		return false
	}
}

// Depth returns the number of jobs currently admitted and not yet finished
// (queued + running) — the backpressure signal the server exports.
func (p *Pool) Depth() int { return int(p.depth.Load()) }

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops admission and waits for every admitted job to finish — the
// graceful-drain half of the daemon's SIGTERM handling. TrySubmit returns
// false from the moment Close begins.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.wg.Wait()
}
