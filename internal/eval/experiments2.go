package eval

import (
	"fmt"
	"math/rand"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/network"
	"rmt/internal/nodeset"
	_ "rmt/internal/ppa" // registers the PPA protocol
	"rmt/internal/protocol"
	"rmt/internal/selfred"
	"rmt/internal/view"
	"rmt/internal/zcpa"
)

// radiusView interpolates the knowledge levels continuously by hop radius.
func radiusView(g *graph.Graph, radius int) view.Function {
	return view.Radius(g, radius)
}

// E7DecisionProtocol validates Theorem 9's self-reduction: 𝒵-CPA with the
// Π-simulation decider must behave identically to 𝒵-CPA with the direct
// membership oracle, across random instances, corruption sets, and attack
// styles. The table reports the agreement rate (must be 100%) and the
// number of simulated e_0^l/e_1^l run pairs.
func E7DecisionProtocol(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E7",
		Title:   "Decision Protocol ≡ direct membership check (Thm 9 / Cor 10)",
		Columns: []string{"attack", "runs", "agree", "disagree", "simulated Π pairs"},
	}
	attacks := []string{"honest", "silent", "wrong-value"}
	type counter struct {
		runs, agree, pairs int
	}
	results := runTrials(p, 700, func(r *rand.Rand, _ int) map[string]counter {
		in := drawInstance(r, func(r *rand.Rand) (*instance.Instance, error) {
			return gen.RandomInstance(r, 4+r.Intn(4), 0.5, 1+r.Intn(3), 0.4, gen.AdHoc)
		})
		counters := map[string]counter{}
		corruptions := in.MaximalCorruptions()
		for _, attack := range attacks {
			sets := corruptions
			if attack == "honest" {
				sets = []nodeset.Set{nodeset.Empty()}
			}
			c := counters[attack]
			for _, tset := range sets {
				mk := func() map[int]network.Process {
					switch attack {
					case "silent":
						return byzantine.SilentProcesses(tset)
					case "wrong-value":
						return zcpa.WrongValueProcesses(in, tset, "forged")
					default:
						return nil
					}
				}
				dopts := p.options()
				dopts.Corrupt = mk()
				direct, err := protocol.RunByName(protocol.ZCPA, in, "real", dopts)
				if err != nil {
					panic(err)
				}
				pi := &selfred.PiDecider{LK: in.LocalKnowledge()}
				sopts := p.options()
				sopts.Corrupt = mk()
				sopts.Decider = pi
				sim, err := protocol.RunByName(protocol.ZCPA, in, "real", sopts)
				if err != nil {
					panic(err)
				}
				c.runs++
				c.pairs += pi.SimulatedRuns / 2
				dv, dok := direct.DecisionOf(in.Receiver)
				sv, sok := sim.DecisionOf(in.Receiver)
				if dv == sv && dok == sok && direct.Rounds == sim.Rounds {
					c.agree++
				}
			}
			counters[attack] = c
		}
		return counters
	})
	for _, attack := range attacks {
		var c counter
		for _, m := range results {
			c.runs += m[attack].runs
			c.agree += m[attack].agree
			c.pairs += m[attack].pairs
		}
		t.AddRow(attack, c.runs, c.agree, c.runs-c.agree, c.pairs)
	}
	t.Notes = append(t.Notes, "expected: disagree = 0 — the Π-simulation scheme loses nothing")
	return t
}

// E8Scaling compares the complexity footprints of Z-CPA, PPA and RMT-PKA as
// instances grow: Z-CPA stays linear-round / polynomial-message while the
// path-flooding protocols track the simple-path count (exponential in dense
// topologies) — the efficiency gap motivating Section 5.
func E8Scaling(p Params) *Table {
	p = p.withDefaults()
	t := &Table{
		ID:      "E8",
		Title:   "complexity scaling: Z-CPA vs PPA vs RMT-PKA (Sec. 5 motivation)",
		Columns: []string{"topology", "n", "D-R paths", "protocol", "rounds", "messages", "bits", "decided"},
	}
	type topo struct {
		name string
		g    *graph.Graph
		d, r int
	}
	var topos []topo
	for _, n := range []int{5, 7, 9, 11} {
		topos = append(topos, topo{fmt.Sprintf("line-%d", n), gen.Line(n), 0, n - 1})
	}
	for _, w := range []int{2, 3} {
		for _, l := range []int{2, 3} {
			g, d, r := gen.Layered(l, w)
			topos = append(topos, topo{fmt.Sprintf("layered-%dx%d", l, w), g, d, r})
		}
	}
	for _, tp := range topos {
		z := adversary.Trivial()
		in, err := gen.Build(tp.g, z, gen.AdHoc, tp.d, tp.r)
		if err != nil {
			panic(err)
		}
		paths := tp.g.CountPaths(tp.d, tp.r, nodeset.Empty(), 0)

		zres, err := protocol.RunByName(protocol.ZCPA, in, "x", p.options())
		if err != nil {
			panic(err)
		}
		addScalingRow(t, tp.name, in.N(), paths, "Z-CPA", zres, in.Receiver)

		fullIn, err := gen.Build(tp.g, z, gen.FullKnowledge, tp.d, tp.r)
		if err != nil {
			panic(err)
		}
		pres, err := protocol.RunByName(protocol.PPA, fullIn, "x", p.options())
		if err != nil {
			panic(err)
		}
		addScalingRow(t, tp.name, in.N(), paths, "PPA", pres, in.Receiver)

		kres, err := protocol.RunByName(protocol.PKA, in, "x", p.options())
		if err != nil {
			panic(err)
		}
		addScalingRow(t, tp.name, in.N(), paths, "RMT-PKA", kres, in.Receiver)
	}
	t.Notes = append(t.Notes,
		"expected shape: Z-CPA messages grow linearly with n; PPA and RMT-PKA track the D-R path count",
		"RMT-PKA additionally floods type-2 knowledge, costing the largest bit volume")
	return t
}

func addScalingRow(t *Table, name string, n, paths int, proto string, res *network.Result, receiver int) {
	_, decided := res.DecisionOf(receiver)
	t.AddRow(name, n, paths, proto, res.Rounds, res.Metrics.MessagesSent, res.Metrics.BitsSent, decided)
}

// F1BasicFrontier reproduces Figure 1's family 𝒢′: basic instances with a
// middle set of size k under a global threshold t. The solvability frontier
// is 2t < k (no pair partition), and protocol Π must decide exactly on the
// solvable side.
func F1BasicFrontier(p Params) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "basic-instance family 𝒢′ solvability frontier (Figure 1)",
		Columns: []string{"|A(G)|", "threshold t", "pair partition?", "solvable", "Π decides worst case"},
	}
	for k := 2; k <= 6; k++ {
		for thr := 0; thr <= 3; thr++ {
			middle := nodeset.Range(1, 1+k)
			z := adversary.GlobalThreshold(middle, thr)
			b := selfred.NewBasic(middle, z)
			solvable := b.Solvable()
			// Worst case for Π: t corrupted middles report a forged value.
			var corrupted nodeset.Set
			i := 0
			middle.ForEach(func(v int) bool {
				if i < thr {
					corrupted = corrupted.Add(v)
					i++
				}
				return true
			})
			reports := map[network.Value]nodeset.Set{
				"real": middle.Minus(corrupted),
			}
			if !corrupted.IsEmpty() {
				reports["forged"] = corrupted
			}
			x, ok := selfred.Pi(b, reports)
			piOK := ok && x == "real"
			t.AddRow(k, thr, !solvable, solvable, piOK)
		}
	}
	t.Notes = append(t.Notes,
		"expected frontier: solvable ⇔ 2t < k, and Π decides exactly on solvable instances")
	return t
}

// F2IndistinguishableRuns materializes the proof constructions built on
// indistinguishable executions: Theorem 8's runs e and e' (the receiver's
// views coincide byte-for-byte although the dealer values differ) and
// Theorem 9's paired runs e_0^l / e_1^l.
func F2IndistinguishableRuns(p Params) *Table {
	t := &Table{
		ID:      "F2",
		Title:   "indistinguishable runs (Thm 8 construction; Thm 9 pairs, Figure 2)",
		Columns: []string{"construction", "dealer values", "views equal", "decisions equal"},
	}
	// Theorem 8 on the weak diamond: run e has x_D = 0 with node 1
	// corrupted sending 1 (its honest behavior in e'); run e' has x_D = 1
	// with node 2 corrupted sending 0. The receiver cannot distinguish.
	g, d, rcv := gen.DisjointPaths(2, 1)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, rcv)))
	in, err := gen.Build(g, z, gen.AdHoc, d, rcv)
	if err != nil {
		panic(err)
	}
	run := func(xD network.Value, corruptNode int, lie network.Value) *network.Result {
		corrupt := map[int]network.Process{
			corruptNode: &zcpa.WrongValue{Neighbors: in.G.Neighbors(corruptNode), Value: lie},
		}
		opts := p.options()
		opts.Corrupt = corrupt
		opts.RecordTranscript = true
		opts.MaxRounds = 4
		res, err := protocol.RunByName(protocol.ZCPA, in, xD, opts)
		if err != nil {
			panic(err)
		}
		return res
	}
	e := run("0", 1, "1")
	ePrime := run("1", 2, "0")
	viewsEqual := e.Transcript.ViewKey(rcv, 0) == ePrime.Transcript.ViewKey(rcv, 0)
	dv, dok := e.DecisionOf(rcv)
	pv, pok := ePrime.DecisionOf(rcv)
	t.AddRow("Thm 8: runs e / e'", "0 vs 1", viewsEqual, dv == pv && dok == pok)

	// Theorem 9 pairs on a basic instance.
	b := selfred.NewBasic(nodeset.Of(1, 2, 3), adversary.FromSlices([]int{1}))
	e0, e1, _ := selfred.RunPair(b, nodeset.Of(2, 3))
	_, _, key1 := selfred.RunPair(b, nodeset.Of(2, 3))
	_, _, key2 := selfred.RunPair(b, nodeset.Of(2, 3))
	t.AddRow("Thm 9: runs e_0^l / e_1^l", "0 vs 1", key1 == key2,
		e0.Decision == e1.Decision && e0.Decided == e1.Decided)
	t.Notes = append(t.Notes,
		"views equal = true exhibits why no safe algorithm can decide across an RMT Z-pp cut",
		"in the Thm 8 construction the receiver must stay undecided (safety); both runs agree")
	return t
}
