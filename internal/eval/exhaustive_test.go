package eval

import (
	"testing"

	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

func TestE13AllRowsClean(t *testing.T) {
	tab := E13Exhaustive(fast())
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("%s/%s: PKA mismatches %s", row[0], row[1], row[4])
		}
	}
}

// TestExhaustiveFiveNodes extends the exhaustive sweep to every labeled
// 5-node graph (1024 edge subsets) with singleton corruption of the three
// relays, in the ad hoc model. Run with -short to skip.
func TestExhaustiveFiveNodes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive n=5 sweep")
	}
	const n = 5
	dealer, receiver := 0, n-1
	z := gen.Singletons(nodeset.Of(1, 2, 3))
	pairs := allEdgePairs(n)
	var total, solvable int
	for mask := 0; mask < 1<<len(pairs); mask++ {
		g := graph.NewWithNodes(n)
		for i, e := range pairs {
			if mask&(1<<i) != 0 {
				g.AddEdge(e[0], e[1])
			}
		}
		in, err := instance.AdHoc(g, z, dealer, receiver)
		if err != nil {
			continue
		}
		total++
		cutFree := core.Solvable(in)
		ok, err := core.Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		if cutFree != ok {
			t.Fatalf("mask %d: PKA cut=%v sim=%v on %v", mask, cutFree, ok, g)
		}
		if zOK, err := zcpa.Resilient(in); err != nil {
			t.Fatal(err)
		} else if zcpa.Solvable(in) != zOK {
			t.Fatalf("mask %d: Z-CPA mismatch on %v", mask, g)
		}
		if cutFree {
			solvable++
		}
	}
	if total != 1024 {
		t.Fatalf("checked %d graphs, want 1024", total)
	}
	t.Logf("n=5 exhaustive: %d/%d solvable, zero mismatches", solvable, total)
}

// TestExhaustiveStructuresOnFixedGraph sweeps EVERY monotone structure over
// the two relays of the diamond (there are only a handful) and checks
// tightness for each — the structure-space dual of the graph sweep.
func TestExhaustiveStructuresOnFixedGraph(t *testing.T) {
	g, err := graph.ParseEdgeList("0-1 0-2 1-3 2-3")
	if err != nil {
		t.Fatal(err)
	}
	relays := nodeset.Of(1, 2)
	// All antichains over {1,2}: {∅}, {{1}}, {{2}}, {{1},{2}}, {{1,2}}.
	structures := []adversary.Structure{
		adversary.Trivial(),
		adversary.FromSlices([]int{1}),
		adversary.FromSlices([]int{2}),
		adversary.FromSlices([]int{1}, []int{2}),
		adversary.FromSets(relays),
	}
	wantSolvable := []bool{true, true, true, false, false}
	for i, z := range structures {
		in, err := instance.AdHoc(g, z, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		cutFree := core.Solvable(in)
		if cutFree != wantSolvable[i] {
			t.Errorf("structure %v: solvable = %v, want %v", z, cutFree, wantSolvable[i])
		}
		ok, err := core.Resilient(in)
		if err != nil {
			t.Fatal(err)
		}
		if ok != cutFree {
			t.Errorf("structure %v: sim %v != cut %v", z, ok, cutFree)
		}
	}
}
