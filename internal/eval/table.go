// Package eval is the experiment harness: it regenerates every table and
// figure of EXPERIMENTS.md (experiments E1–E8, F1, F2 in DESIGN.md's
// index), printing the same rows the documentation reports. cmd/rmtbench
// drives it; bench_test.go at the repository root wraps each experiment in
// a testing.B benchmark.
package eval

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
