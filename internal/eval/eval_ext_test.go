package eval

import (
	"strconv"
	"strings"
	"testing"
)

func TestE9NoMismatches(t *testing.T) {
	tab := E9BroadcastTightness(fast())
	for _, row := range tab.Rows {
		if row[4] != "0" {
			t.Errorf("n=%s: %s broadcast mismatches", row[0], row[4])
		}
		if row[1] == "0" {
			t.Errorf("n=%s: no instances", row[0])
		}
	}
}

func TestE10SavingsAndSafety(t *testing.T) {
	tab := E10HorizonAblation(fast())
	baselines := map[string]int{}
	for _, row := range tab.Rows {
		msgs := atoiOrFail(t, row[2])
		if row[1] == "∞" {
			baselines[row[0]] = msgs
			if row[4] != "true" {
				t.Errorf("%s: unbounded PKA undecided", row[0])
			}
			continue
		}
		base, ok := baselines[row[0]]
		if !ok {
			t.Fatalf("%s: bounded row before baseline", row[0])
		}
		if msgs > base {
			t.Errorf("%s horizon %s: more messages than unbounded (%d > %d)",
				row[0], row[1], msgs, base)
		}
	}
	// At least one configuration must show real savings.
	saved := false
	for _, row := range tab.Rows {
		if strings.HasSuffix(row[5], "%") && row[5] != "0%" {
			saved = true
		}
	}
	if !saved {
		t.Error("no configuration showed message savings")
	}
}

func TestE11SpeedupPositive(t *testing.T) {
	tab := E11RepresentationAblation(fast())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Rows {
		fastUs, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", row[2], err)
		}
		slowUs, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad cell %q: %v", row[3], err)
		}
		if slowUs < fastUs {
			t.Errorf("universe %s: brute force (%.1fµs) beat the antichain (%.1fµs)",
				row[0], slowUs, fastUs)
		}
	}
}

func TestE12NoFakeEdges(t *testing.T) {
	tab := E12Discovery(fast())
	var contestedTotal int
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Errorf("strategy %s: %s fake edges accepted", row[0], row[3])
		}
		if row[0] == "honest" || row[0] == "silent" || row[0] == "fake-edge" {
			parts := strings.SplitN(row[2], "/", 2)
			if parts[0] != parts[1] {
				t.Errorf("strategy %s: confirmed %s of confirmable honest edges", row[0], row[2])
			}
		}
		if row[0] == "split-brain" {
			contestedTotal += atoiOrFail(t, row[4])
		}
	}
	if contestedTotal == 0 {
		t.Error("split-brain runs flagged nothing as contested")
	}
}

func TestRunAllIncludesExtensions(t *testing.T) {
	tables := RunAll(fast())
	if len(tables) != 15 {
		t.Fatalf("RunAll returned %d tables, want 15", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		ids[tab.ID] = true
	}
	for _, id := range []string{"E9", "E10", "E11", "E12"} {
		if !ids[id] {
			t.Errorf("missing %s", id)
		}
	}
}

func TestE13ExhaustiveZeroMismatches(t *testing.T) {
	tab := E13Exhaustive(fast())
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] != "64" {
			t.Errorf("%s/%s: %s instances, want 64", row[0], row[1], row[2])
		}
		if row[4] != "0" {
			t.Errorf("%s/%s: %s PKA mismatches", row[0], row[1], row[4])
		}
		if row[1] == "adhoc" && row[5] != "0" {
			t.Errorf("%s/%s: %s Z-CPA mismatches", row[0], row[1], row[5])
		}
	}
}
