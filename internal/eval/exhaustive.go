package eval

import (
	"fmt"

	"rmt/internal/adversary"
	"rmt/internal/core"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
	"rmt/internal/zcpa"
)

// E13Exhaustive verifies the tight characterizations EXHAUSTIVELY on every
// labeled graph with n = 4 nodes (all 2^6 edge subsets) under several
// canonical structure families and knowledge levels — not a random sample
// but the complete space. A single counterexample anywhere would falsify
// Theorems 3/5 or 7/8 as implemented.
func E13Exhaustive(p Params) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "exhaustive verification on ALL 4-node graphs (Thms 3&5, 7&8)",
		Columns: []string{"structure family", "knowledge", "instances", "solvable", "PKA mismatches", "Z-CPA mismatches"},
	}
	const n = 4
	dealer, receiver := 0, n-1
	relays := nodeset.Of(1, 2)
	structures := []struct {
		name string
		z    adversary.Structure
	}{
		{"trivial", adversary.Trivial()},
		{"singletons", gen.Singletons(relays)},
		{"threshold-1", adversary.GlobalThreshold(relays, 1)},
		{"both-relays", adversary.FromSets(relays)},
	}
	pairs := allEdgePairs(n)
	knowledges := []gen.Knowledge{gen.AdHoc, gen.FullKnowledge}
	// The 8 (structure, knowledge) cells are independent deterministic sweeps;
	// fan them across the pool and emit rows in cell-index order.
	type cell struct{ total, solvable, pkaMis, zcpaMis int }
	cells := parallelMap(len(structures)*len(knowledges), p.withDefaults().workers(), func(i int) cell {
		s := structures[i/len(knowledges)]
		k := knowledges[i%len(knowledges)]
		var c cell
		for mask := 0; mask < 1<<len(pairs); mask++ {
			g := graph.NewWithNodes(n)
			for j, e := range pairs {
				if mask&(1<<j) != 0 {
					g.AddEdge(e[0], e[1])
				}
			}
			in, err := instance.New(g, s.z, k.View(g), dealer, receiver)
			if err != nil {
				continue
			}
			c.total++
			cutFree := core.Solvable(in)
			ok, err := core.Resilient(in)
			if err != nil {
				panic(err)
			}
			if cutFree != ok {
				c.pkaMis++
			}
			if cutFree {
				c.solvable++
			}
			if k == gen.AdHoc {
				zOK, err := zcpa.Resilient(in)
				if err != nil {
					panic(err)
				}
				if zcpa.Solvable(in) != zOK {
					c.zcpaMis++
				}
			}
		}
		return c
	})
	for i, c := range cells {
		s := structures[i/len(knowledges)]
		k := knowledges[i%len(knowledges)]
		zcpaCell := fmt.Sprint(c.zcpaMis)
		if k != gen.AdHoc {
			zcpaCell = "-"
		}
		t.AddRow(s.name, k.String(), c.total, c.solvable, c.pkaMis, zcpaCell)
	}
	t.Notes = append(t.Notes,
		"every labeled 4-node graph (64 edge subsets) is checked — zero mismatches expected",
		"Z-CPA column applies to the ad hoc rows only")
	return t
}

func allEdgePairs(n int) [][2]int {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	return pairs
}
