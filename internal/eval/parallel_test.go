package eval

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestParallelTablesDeterministic is the harness's contract: for a fixed
// seed, every table renders byte-identical no matter how many workers run
// the trials. E11 is excluded — it reports wall-clock timings.
func TestParallelTablesDeterministic(t *testing.T) {
	render := func(workers int) map[string][]byte {
		p := Params{Seed: 2016, Trials: 12, Workers: workers}
		out := map[string][]byte{}
		for _, tbl := range RunAll(p) {
			if tbl.ID == "E11" {
				continue
			}
			var buf bytes.Buffer
			tbl.Render(&buf)
			out[tbl.ID] = buf.Bytes()
		}
		return out
	}
	seq := render(1)
	par := render(8)
	if len(seq) != len(par) {
		t.Fatalf("table count differs: %d vs %d", len(seq), len(par))
	}
	for id, want := range seq {
		if got, ok := par[id]; !ok || !bytes.Equal(want, got) {
			t.Errorf("%s: Workers=8 render differs from Workers=1\nsequential:\n%s\nparallel:\n%s", id, want, got)
		}
	}
}

func TestTrialSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for stream := 0; stream < 20; stream++ {
		for trial := 0; trial < 200; trial++ {
			s := trialSeed(2016, stream, trial)
			if s < 0 {
				t.Fatalf("trialSeed(2016, %d, %d) = %d, want non-negative", stream, trial, s)
			}
			if seen[s] {
				t.Fatalf("trialSeed collision at stream=%d trial=%d", stream, trial)
			}
			seen[s] = true
		}
	}
}

func TestParallelMapOrderAndCoverage(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got := parallelMap(100, workers, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, v, i*i)
			}
		}
	}
	if got := parallelMap(0, 4, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0: got %v, want empty", got)
	}
}

func TestRunTrialsIndependentOfWorkerCount(t *testing.T) {
	draw := func(workers int) []int64 {
		p := Params{Seed: 7, Trials: 50, Workers: workers}
		return runTrials(p, 99, func(r *rand.Rand, _ int) int64 { return r.Int63() })
	}
	a, b := draw(1), draw(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d drew %d sequentially but %d with 6 workers", i, a[i], b[i])
		}
	}
}
