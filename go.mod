module rmt

go 1.22
