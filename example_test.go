package rmt_test

import (
	"fmt"

	"rmt"
)

// The triple-relay network: reliable transmission despite any single
// corrupted relay.
func ExampleRunPKA() {
	g, _ := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	z := rmt.StructureOf([]int{1}, []int{2}, []int{3})
	in, _ := rmt.NewAdHocInstance(g, z, 0, 4)

	res, _ := rmt.RunPKA(in, "attack at dawn", rmt.SilentCorruption(rmt.NodeSet(2)), rmt.PKAOptions{})
	x, ok := res.DecisionOf(4)
	fmt.Println(x, ok)
	// Output: attack at dawn true
}

// Feasibility is decidable exactly: the weak diamond admits an RMT-cut, so
// no safe algorithm can deliver.
func ExampleFindRMTCut() {
	g, _ := rmt.ParseEdgeList("0-1 0-2 1-3 2-3")
	z := rmt.StructureOf([]int{1}, []int{2})
	in, _ := rmt.NewAdHocInstance(g, z, 0, 3)

	cut, found := rmt.FindRMTCut(in)
	fmt.Println(found, cut.Cut())
	// Output: true {1, 2}
}

// The ⊕ operation merges two players' partial adversary knowledge into the
// worst-case structure consistent with both.
func ExampleJoinViews() {
	z := rmt.StructureOf([]int{1}, []int{2})
	a := z.RestrictTo(rmt.NodeSet(1)) // a player that only sees node 1
	b := z.RestrictTo(rmt.NodeSet(2)) // a player that only sees node 2
	joint := rmt.JoinViews(a, b)

	// Neither player can rule out {1, 2} being corrupted together — the
	// join keeps the "chimera" union even though 𝒵 itself never allows it.
	fmt.Println(joint.Contains(rmt.NodeSet(1, 2)), z.Contains(rmt.NodeSet(1, 2)))
	// Output: true false
}

// 𝒵-CPA decides in the ad hoc model whenever its tight condition holds.
func ExampleRunZCPA() {
	g, _ := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	z := rmt.Threshold(rmt.NodeSet(1, 2, 3), 1)
	in, _ := rmt.NewAdHocInstance(g, z, 0, 4)

	fmt.Println(rmt.SolvableZCPA(in))
	res, _ := rmt.RunZCPA(in, "retreat", nil, rmt.ZCPAOptions{})
	x, _ := res.DecisionOf(4)
	fmt.Println(x)
	// Output:
	// true
	// retreat
}

// MinimalKnowledgeRadius finds the least topology knowledge that makes RMT
// possible — radius 2 on the chimera network.
func ExampleMinimalKnowledgeRadius() {
	g, _ := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 1-5 3-5 4-6 5-6")
	z := rmt.StructureOf([]int{1}, []int{2}, []int{3})

	k, ok := rmt.MinimalKnowledgeRadius(g, z, 0, 6)
	fmt.Println(k, ok)
	// Output: 2 true
}

// Broadcast delivers to every honest player.
func ExampleRunBroadcast() {
	g, _ := rmt.ParseEdgeList("0-1 0-2 0-3 1-2 1-3 2-3")
	z := rmt.StructureOf([]int{1}, []int{2}, []int{3})
	in, _ := rmt.NewBroadcast(g, z, 0)

	res, _ := rmt.RunBroadcast(in, "assemble", rmt.SilentCorruption(rmt.NodeSet(3)), rmt.Lockstep)
	x1, _ := res.DecisionOf(1)
	x2, _ := res.DecisionOf(2)
	fmt.Println(x1, x2)
	// Output: assemble assemble
}
