// Ad hoc networks: 𝒵-CPA end to end, with an attack and an impossibility.
//
// This example walks Section 4 of the paper on two instances:
//
//  1. a solvable layered network, where 𝒵-CPA certifies the dealer value
//     hop by hop even while a corrupted relay pushes a forged value, and
//
//  2. the "weak diamond", where the RMT 𝒵-pp cut proves that NO safe
//     algorithm can deliver — and 𝒵-CPA, being safe, correctly hangs
//     rather than guess.
//
//     go run ./examples/adhoc
package main

import (
	"fmt"
	"log"

	"rmt"
)

func main() {
	solvableLayered()
	impossibleDiamond()
}

func solvableLayered() {
	fmt.Println("— layered network, threshold adversary —")
	// D=0 → layer {1,2,3} → layer {4,5,6} → R=7, complete between layers.
	g, err := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 1-5 1-6 2-4 2-5 2-6 3-4 3-5 3-6 4-7 5-7 6-7")
	if err != nil {
		log.Fatal(err)
	}
	// Global threshold: at most one corrupted relay anywhere.
	z := rmt.Threshold(rmt.NodeSet(1, 2, 3, 4, 5, 6), 1)
	in, err := rmt.NewAdHocInstance(g, z, 0, 7)
	if err != nil {
		log.Fatal(err)
	}
	if !rmt.SolvableZCPA(in) {
		log.Fatal("expected solvable")
	}
	fmt.Println("no RMT Z-pp cut: Z-CPA will deliver (Theorem 7)")

	// Corrupt relay 5 with the full zoo's value-flip strategy.
	zoo := rmt.AttackZoo(in, rmt.NodeSet(5), "retreat at once")
	res, err := rmt.RunZCPA(in, "attack at dawn", zoo["value-flip"], rmt.ZCPAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	x, ok := res.DecisionOf(7)
	fmt.Printf("under value-flip attack by node 5: receiver decided %q (ok=%v) in %d rounds\n\n",
		x, ok, res.Rounds)
}

func impossibleDiamond() {
	fmt.Println("— weak diamond: provably impossible —")
	g, err := rmt.ParseEdgeList("0-1 0-2 1-3 2-3")
	if err != nil {
		log.Fatal(err)
	}
	z := rmt.StructureOf([]int{1}, []int{2})
	in, err := rmt.NewAdHocInstance(g, z, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	cut, found := rmt.FindZppCut(in)
	if !found {
		log.Fatal("expected a Z-pp cut")
	}
	fmt.Printf("RMT Z-pp cut exists: %v — no safe algorithm can deliver (Theorem 8)\n", cut)

	// Run Z-CPA anyway, with relay 1 lying: safety means the receiver
	// stays undecided instead of being fooled.
	zoo := rmt.AttackZoo(in, rmt.NodeSet(1), "retreat at once")
	res, err := rmt.RunZCPA(in, "attack at dawn", zoo["value-flip"], rmt.ZCPAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if x, ok := res.DecisionOf(3); ok {
		fmt.Printf("receiver decided %q — would be unsafe!\n", x)
	} else {
		fmt.Println("receiver stayed undecided: safety preserved where liveness is impossible")
	}
}
