// Partial knowledge: where extra topology knowledge is exactly what makes
// RMT possible.
//
// The "chimera" network is unsolvable in the ad hoc model: the receiver
// side's joint adversary structure Z_B, computed with the ⊕ operation from
// neighborhood-only views, admits a chimera corruption set {2,3} that no
// single player can refute — so an RMT-cut exists. Give every player a
// radius-2 view and the receiver sees both halves of the chimera at once;
// the ⊕ join kills the fake set and RMT-PKA delivers.
//
// This is the paper's headline phenomenon: solvability depends on the
// *amount* of knowledge, and RMT-PKA achieves RMT at the minimal level
// where any algorithm can (uniqueness, Corollary 6).
//
//	go run ./examples/partialknowledge
package main

import (
	"fmt"
	"log"

	"rmt"
)

func main() {
	// D=0 feeds cut nodes {1,2,3}; relay 4 hangs off {1,2}, relay 5 off
	// {1,3}; R=6 behind {4,5}. Any single cut node may be corrupted.
	g, err := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 1-5 3-5 4-6 5-6")
	if err != nil {
		log.Fatal(err)
	}
	z := rmt.StructureOf([]int{1}, []int{2}, []int{3})

	fmt.Println("sweep of knowledge levels on the chimera network:")
	type level struct {
		name  string
		gamma rmt.ViewFunction
	}
	for _, l := range []level{
		{"ad hoc (γ = neighborhood)", rmt.AdHocView(g)},
		{"radius 1", rmt.RadiusView(g, 1)},
		{"radius 2", rmt.RadiusView(g, 2)},
		{"full (γ = G)", rmt.FullView(g)},
	} {
		in, err := rmt.NewInstance(g, z, l.gamma, 0, 6)
		if err != nil {
			log.Fatal(err)
		}
		if rmt.SolvablePKA(in) {
			fmt.Printf("  %-28s SOLVABLE\n", l.name)
		} else {
			cut, _ := rmt.FindRMTCut(in)
			fmt.Printf("  %-28s unsolvable — RMT-cut C1=%v C2=%v\n", l.name, cut.C1, cut.C2)
		}
	}

	k, ok := rmt.MinimalKnowledgeRadius(g, z, 0, 6)
	if !ok {
		log.Fatal("expected solvable at some radius")
	}
	fmt.Printf("\nminimal knowledge radius: %d (Section 3's minimal γ)\n\n", k)

	// Demonstrate the ⊕ chimera directly: with neighborhood views, nodes
	// 4 and 5 each see only half of {2,3}, so the join admits the union.
	adhoc, err := rmt.NewAdHocInstance(g, z, 0, 6)
	if err != nil {
		log.Fatal(err)
	}
	joint := rmt.JoinViews(adhoc.LocalStructure(4), adhoc.LocalStructure(5), adhoc.LocalStructure(6))
	fmt.Printf("ad hoc joint structure of B={4,5,6} admits {2,3}: %v  ← the chimera\n",
		joint.Contains(rmt.NodeSet(2, 3)))

	r2, err := rmt.NewInstance(g, z, rmt.RadiusView(g, 2), 0, 6)
	if err != nil {
		log.Fatal(err)
	}
	joint2 := rmt.JoinViews(r2.LocalStructure(4), r2.LocalStructure(5), r2.LocalStructure(6))
	fmt.Printf("radius-2 joint structure of B={4,5,6} admits {2,3}: %v ← refuted by R's wider view\n\n",
		joint2.Contains(rmt.NodeSet(2, 3)))

	// And the payoff: run RMT-PKA at radius 2 with cut node 2 silenced.
	res, err := rmt.RunPKA(r2, "attack at dawn", rmt.SilentCorruption(rmt.NodeSet(2)), rmt.PKAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	x, ok := res.DecisionOf(6)
	fmt.Printf("RMT-PKA at radius 2, node 2 silenced: receiver decided %q (ok=%v) in %d rounds\n",
		x, ok, res.Rounds)
}
