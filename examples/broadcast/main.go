// Reliable Broadcast and Byzantine topology discovery — the library's two
// extensions around the paper: its root setting (broadcast with an honest
// dealer, where CPA was born) and the application its conclusions point at
// (topology discovery with the ⊕ machinery).
//
//	go run ./examples/broadcast
package main

import (
	"fmt"
	"log"

	"rmt"
)

func main() {
	broadcastDemo()
	discoveryDemo()
}

func broadcastDemo() {
	fmt.Println("— Reliable Broadcast on a K5 with one corruptible player —")
	g, err := rmt.ParseEdgeList("0-1 0-2 0-3 0-4 1-2 1-3 1-4 2-3 2-4 3-4")
	if err != nil {
		log.Fatal(err)
	}
	z := rmt.Threshold(rmt.NodeSet(1, 2, 3, 4), 1)
	in, err := rmt.NewBroadcast(g, z, 0)
	if err != nil {
		log.Fatal(err)
	}
	if !rmt.SolvableBroadcast(in) {
		log.Fatal("expected solvable broadcast")
	}
	res, err := rmt.RunBroadcast(in, "all hands meeting", rmt.SilentCorruption(rmt.NodeSet(3)), rmt.Lockstep)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range []int{1, 2, 4} {
		x, ok := res.DecisionOf(v)
		fmt.Printf("  player %d decided %q (ok=%v)\n", v, x, ok)
	}

	// Contrast: a thin topology where one corruptible node strands a
	// player. Note the non-monotonicity: the hard case is corrupting ONLY
	// node 1, which leaves node 2 honest but unreachable.
	thin, err := rmt.ParseEdgeList("0-1 1-2")
	if err != nil {
		log.Fatal(err)
	}
	tin, err := rmt.NewBroadcast(thin, rmt.StructureOf([]int{1}), 0)
	if err != nil {
		log.Fatal(err)
	}
	if cut, found := rmt.FindBroadcastCut(tin); found {
		fmt.Printf("  thin chain: impossible, witness %v\n\n", cut)
	}
}

func discoveryDemo() {
	fmt.Println("— Byzantine topology discovery on a ring —")
	g, err := rmt.ParseEdgeList("0-1 1-2 2-3 3-4 4-0")
	if err != nil {
		log.Fatal(err)
	}
	z := rmt.StructureOf([]int{2})
	// Node 2 is corrupted and silent: the observer (node 0) still maps
	// the rest of the ring via the other arc; node 2's channels stay
	// unconfirmed because bilateral confirmation fails.
	res, err := rmt.DiscoverTopology(g, z, rmt.AdHocView(g), 0,
		rmt.SilentCorruption(rmt.NodeSet(2)), rmt.Lockstep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  known nodes:      %v\n", res.Known)
	fmt.Printf("  confirmed edges:  %v\n", res.Confirmed)
	fmt.Printf("  claimed (optimistic): %v\n", res.Claimed)
	fmt.Printf("  contested nodes:  %v\n", res.Contested)
	fmt.Printf("  joint adversary knowledge: %v\n", res.Joint.Structure)
}
