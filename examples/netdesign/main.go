// Network design phase: use the RMT-cut to map where reliable transmission
// is possible before deploying.
//
// The paper notes that the new cut notion "can be used to determine the
// exact subgraph in which RMT is possible in a network design phase". This
// example takes a 3×4 grid backbone whose six inner routers host a
// threshold adversary (any one may be corrupted) and computes, for a corner
// dealer, the exact feasible-receiver region at each knowledge level. The
// region grows with knowledge — the designer can read off how much
// topology information each node must be provisioned with to reach a given
// receiver, and which receivers are out of reach at any knowledge level.
//
//	go run ./examples/netdesign
package main

import (
	"fmt"
	"log"

	"rmt"
)

func main() {
	// 3×4 grid, nodes row-major:
	//   0  1  2  3
	//   4  5  6  7
	//   8  9 10 11
	g, err := rmt.ParseEdgeList(
		"0-1 1-2 2-3 4-5 5-6 6-7 8-9 9-10 10-11 " +
			"0-4 4-8 1-5 5-9 2-6 6-10 3-7 7-11")
	if err != nil {
		log.Fatal(err)
	}
	dealer := 0
	// Any single inner router may be Byzantine.
	routers := rmt.NodeSet(1, 2, 5, 6, 9, 10)
	z := rmt.Threshold(routers, 1)

	fmt.Println("3x4 grid, dealer 0, adversary: any 1 of the inner routers", routers)
	fmt.Println("(corruptible routers cannot themselves be receivers)")
	fmt.Println()
	fmt.Println("feasible-receiver region by knowledge level:")
	for _, lvl := range []struct {
		name  string
		gamma rmt.ViewFunction
	}{
		{"ad hoc", rmt.AdHocView(g)},
		{"radius 2", rmt.RadiusView(g, 2)},
		{"radius 3", rmt.RadiusView(g, 3)},
		{"full", rmt.FullView(g)},
	} {
		feasible := rmt.FeasibleReceivers(g, z, lvl.gamma, dealer)
		fmt.Printf("  %-9s %v  (%d of 5 honest candidates)\n",
			lvl.name, feasible, feasible.Len())
	}

	// Why does receiver 11 need radius 3? Exhibit the ad hoc cut witness.
	adhoc, err := rmt.NewAdHocInstance(g, z, dealer, 11)
	if err != nil {
		log.Fatal(err)
	}
	if cut, found := rmt.FindRMTCut(adhoc); found {
		fmt.Printf("\nreceiver 11, ad hoc: RMT-cut C1=%v C2=%v over B=%v\n", cut.C1, cut.C2, cut.B)
		fmt.Println("  C2 is a chimera the far corner cannot refute with neighborhood views.")
	}
	if k, ok := rmt.MinimalKnowledgeRadius(g, z, dealer, 11); ok {
		fmt.Printf("minimal knowledge radius for receiver 11: %d\n", k)
	}

	// Design check: under a stronger adversary (any one router PLUS any
	// one of the dealer's links' endpoints) nothing is reachable — the
	// designer learns the backbone needs more dealer-side redundancy.
	strong := rmt.Threshold(routers, 1).Union(rmt.StructureOf([]int{4, 1}))
	feasible := rmt.FeasibleReceivers(g, strong, rmt.FullView(g), dealer)
	fmt.Printf("\nwith the stronger structure (adds corruptible pair {1,4}): feasible = %v\n", feasible)
	fmt.Println("  both dealer links can die together → pair cut → redesign needed.")
}
