// Safety demo: the full registered Byzantine strategy zoo against RMT-PKA.
//
// Theorem 4 gives RMT-PKA an unusually strong safety property: the
// receiver never decides a wrong value even against adversaries that
// report fictitious topology, invent ghost nodes, equivocate per neighbor,
// mutate trails, or lie about their local adversary structures. This
// example throws every registered strategy (rmt.AttackStrategies) at both
// a solvable and an unsolvable instance and tallies the outcomes: correct
// decisions and abstentions are both acceptable; a wrong decision never
// happens. For the randomized version of this check across instance
// families, protocols and engines, see `make attacksweep`.
//
//	go run ./examples/attack
package main

import (
	"fmt"
	"log"

	"rmt"
)

func main() {
	fixtures := []struct {
		name     string
		edges    string
		sets     [][]int
		receiver int
	}{
		{"triple-path (solvable)", "0-1 0-2 0-3 1-4 2-4 3-4",
			[][]int{{1}, {2}, {3}}, 4},
		{"weak-diamond (unsolvable)", "0-1 0-2 1-3 2-3",
			[][]int{{1}, {2}}, 3},
	}
	strategies := rmt.AttackStrategies()

	fmt.Printf("%-26s %-15s %-9s %-10s %s\n", "instance", "strategy", "corrupt", "decision", "verdict")
	wrong := 0
	for _, fx := range fixtures {
		g, err := rmt.ParseEdgeList(fx.edges)
		if err != nil {
			log.Fatal(err)
		}
		z := rmt.StructureOf(fx.sets...)
		in, err := rmt.NewAdHocInstance(g, z, 0, fx.receiver)
		if err != nil {
			log.Fatal(err)
		}
		for _, corruptNode := range fx.sets {
			t := rmt.NodeSet(corruptNode...)
			zoo := rmt.AttackZoo(in, t, "retreat at once")
			for _, name := range strategies {
				res, err := rmt.RunPKA(in, "attack at dawn", zoo[name], rmt.PKAOptions{})
				if err != nil {
					log.Fatal(err)
				}
				decision, verdict := "⊥", "abstained (safe)"
				if x, ok := res.DecisionOf(fx.receiver); ok {
					decision = string(x)
					if x == "attack at dawn" {
						verdict = "correct"
					} else {
						verdict = "WRONG — safety broken!"
						wrong++
					}
				}
				fmt.Printf("%-26s %-15s %-9v %-10q %s\n", fx.name, name, t, decision, verdict)
			}
		}
	}
	fmt.Printf("\nwrong decisions across the zoo: %d (Theorem 4 demands 0)\n", wrong)
	if wrong > 0 {
		log.Fatal("safety violated")
	}
}
