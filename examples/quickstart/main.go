// Quickstart: reliably transmit a message across a network where any one
// relay may be Byzantine.
//
// The topology is three disjoint relay paths between the dealer (node 0)
// and the receiver (node 4); the adversary structure says any single relay
// may be corrupted. We check feasibility with the paper's tight RMT-cut
// condition, then run RMT-PKA — once honestly and once with a silenced
// relay — and watch the receiver decide the right value both times.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmt"
)

func main() {
	// D = 0 ── {1, 2, 3} ── R = 4, three node-disjoint relay paths.
	g, err := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	if err != nil {
		log.Fatal(err)
	}
	// The general adversary may corrupt {1} or {2} or {3} (or nobody).
	z := rmt.StructureOf([]int{1}, []int{2}, []int{3})

	// Ad hoc model: every player knows only its own neighborhood.
	in, err := rmt.NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("network: %d nodes, %d channels; adversary: %v\n",
		g.NumNodes(), g.NumEdges(), z)

	// Feasibility first: Theorems 3 & 5 give an exact answer.
	if !rmt.SolvablePKA(in) {
		cut, _ := rmt.FindRMTCut(in)
		log.Fatalf("RMT impossible here: %v", cut)
	}
	fmt.Println("feasibility: no RMT-cut — transmission is guaranteed")

	// Honest run.
	res, err := rmt.RunPKA(in, "attack at dawn", nil, rmt.PKAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report("honest run", res, 4)

	// Run with relay 2 corrupted and silent (the worst case for delivery).
	res, err = rmt.RunPKA(in, "attack at dawn", rmt.SilentCorruption(rmt.NodeSet(2)), rmt.PKAOptions{})
	if err != nil {
		log.Fatal(err)
	}
	report("relay 2 silenced", res, 4)
}

func report(label string, res *rmt.Result, receiver int) {
	x, ok := res.DecisionOf(receiver)
	fmt.Printf("%-17s receiver decided %q (ok=%v) in %d rounds, %d messages\n",
		label, x, ok, res.Rounds, res.Metrics.MessagesSent)
}
