package main

import (
	"strings"
	"testing"

	"rmt/internal/cliutil"
	"rmt/internal/gen"
)

func TestFamilies(t *testing.T) {
	cases := [][]string{
		{"-family", "disjoint", "-paths", "3", "-hops", "2"},
		{"-family", "layered", "-layers", "2", "-width", "3", "-threshold", "1"},
		{"-family", "chimera", "-k", "3"},
		{"-family", "line", "-n", "6"},
		{"-family", "ring", "-n", "6"},
		{"-family", "grid", "-n", "3", "-cols", "3"},
		{"-family", "random", "-n", "7", "-p", "0.5", "-seed", "3"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		out := sb.String()
		for _, want := range []string{"-graph", "-structure", "-dealer", "-receiver"} {
			if !strings.Contains(out, want) {
				t.Errorf("case %d: missing %s in %q", i, want, out)
			}
		}
	}
}

func TestUnknownFamily(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-family", "nope"}, &sb); err == nil {
		t.Fatal("no error for unknown family")
	}
}

// TestBadParametersErrorInsteadOfPanicking: flag combinations that used to
// crash with a stack trace are one-line usage errors (main exits 2).
func TestBadParametersErrorInsteadOfPanicking(t *testing.T) {
	cases := [][]string{
		{"-family", "ring", "-n", "2"},
		{"-family", "star", "-n", "1"},
		{"-family", "line", "-n", "1"},
		{"-family", "chimera", "-k", "1"},
		{"-family", "butterfly", "-k", "7"},
		{"-family", "butterfly", "-k", "0"},
		{"-family", "bipartite", "-n", "0"},
		{"-family", "regular", "-n", "5", "-degree", "3"},
		{"-family", "disjoint", "-paths", "0"},
		{"-family", "layered", "-layers", "0"},
		{"-family", "grid", "-n", "1", "-cols", "1"},
		{"-family", "random", "-n", "1"},
		{"-family", "random", "-p", "2"},
	}
	for _, args := range cases {
		var sb strings.Builder
		err := run(args, &sb)
		if err == nil {
			t.Errorf("%v: no error", args)
			continue
		}
		if strings.Contains(err.Error(), "\n") {
			t.Errorf("%v: error is not one line: %q", args, err)
		}
	}
}

func TestDeterministicRandom(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-family", "random", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-family", "random", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed, different output")
	}
}

func TestSpecOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-family", "chimera", "-k", "2", "-spec", "-knowledge", "radius2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"# rmt instance v1", "graph:", "knowledge: radius2", "receiver: 6"} {
		if !strings.Contains(out, want) {
			t.Errorf("spec output missing %q:\n%s", want, out)
		}
	}
}

func TestSpecBadKnowledge(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-spec", "-knowledge", "psychic"}, &sb); err == nil {
		t.Fatal("bad knowledge accepted")
	}
}

func TestSpecOutputParsesForEveryFamily(t *testing.T) {
	// Every family's -spec output must round-trip through the parser the
	// consuming commands (rmtcheck/rmtsim -file) use, with the requested
	// knowledge level intact.
	families := [][]string{
		{"-family", "disjoint", "-paths", "3", "-hops", "2"},
		{"-family", "layered", "-layers", "2", "-width", "3", "-threshold", "1"},
		{"-family", "chimera", "-k", "2"},
		{"-family", "line", "-n", "5"},
		{"-family", "ring", "-n", "6"},
		{"-family", "grid", "-n", "3", "-cols", "3"},
		{"-family", "random", "-n", "7", "-seed", "4"},
		{"-family", "star", "-n", "6"},
		{"-family", "bipartite", "-n", "2", "-cols", "3"},
		{"-family", "butterfly", "-k", "2"},
		{"-family", "regular", "-n", "8", "-seed", "3"},
	}
	for _, args := range families {
		var sb strings.Builder
		if err := run(append(args, "-spec", "-knowledge", "radius1"), &sb); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		spec, err := cliutil.ParseInstanceSpec(sb.String())
		if err != nil {
			t.Fatalf("%v: spec output does not parse: %v\n%s", args, err, sb.String())
		}
		if spec.Knowledge != gen.Radius1 {
			t.Errorf("%v: knowledge = %v, want radius1", args, spec.Knowledge)
		}
		if _, err := spec.Instance(); err != nil {
			t.Errorf("%v: spec does not build an instance: %v", args, err)
		}
	}
}

func TestThresholdStructureInSpec(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-family", "disjoint", "-paths", "4", "-threshold", "2", "-spec"}, &sb); err != nil {
		t.Fatal(err)
	}
	spec, err := cliutil.ParseInstanceSpec(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	// Threshold 2 over 4 relays: C(4,2) = 6 maximal sets.
	if got := spec.Z.NumMaximal(); got != 6 {
		t.Fatalf("maximal sets = %d, want 6\n%s", got, sb.String())
	}
}

func TestNewFamilies(t *testing.T) {
	for _, args := range [][]string{
		{"-family", "star", "-n", "6"},
		{"-family", "bipartite", "-n", "2", "-cols", "3"},
		{"-family", "butterfly", "-k", "2"},
		{"-family", "regular", "-n", "8", "-seed", "3"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
		if !strings.Contains(sb.String(), "-graph") {
			t.Fatalf("%v: no graph emitted", args)
		}
	}
}
