// Command rmtgen emits problem instances in the textual format consumed by
// rmtcheck and rmtsim: an edge list, an adversary structure, and the
// dealer/receiver pair.
//
// Usage:
//
//	rmtgen -family chimera -k 3
//	rmtgen -family disjoint -paths 3 -hops 2
//	rmtgen -family layered -layers 2 -width 3 -threshold 1
//	rmtgen -family random -n 8 -p 0.4 -seed 7
//
// Bad parameters are usage errors: rmtgen prints a one-line message and
// exits with status 2, never a stack trace.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"rmt/internal/adversary"
	"rmt/internal/cliutil"
	"rmt/internal/gen"
	"rmt/internal/nodeset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtgen:", err)
		os.Exit(2)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtgen", flag.ContinueOnError)
	var (
		family    = fs.String("family", "disjoint", strings.Join(gen.FamilyNames(), "|"))
		paths     = fs.Int("paths", 3, "disjoint: number of relay chains")
		hops      = fs.Int("hops", 1, "disjoint: relays per chain")
		layers    = fs.Int("layers", 2, "layered: number of layers")
		width     = fs.Int("width", 3, "layered: relays per layer")
		k         = fs.Int("k", 2, "chimera: branches; butterfly: dimension")
		n         = fs.Int("n", 8, "line/ring/random/star/regular: nodes; grid: rows; bipartite: left side")
		cols      = fs.Int("cols", 3, "grid: columns; bipartite: right side")
		p         = fs.Float64("p", 0.4, "random: edge probability")
		degree    = fs.Int("degree", 3, "regular: node degree")
		seed      = fs.Int64("seed", 1, "random/regular: RNG seed")
		threshold = fs.Int("threshold", 0, "use a global threshold structure over the relays (0 = singletons)")
		spec      = fs.Bool("spec", false, "emit the instance-spec file format (for rmtcheck/rmtsim -file)")
		knowledge = fs.String("knowledge", "adhoc", "knowledge level recorded in -spec output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, z, d, rcv, err := gen.BuildFamily(*family, gen.FamilyParams{
		Paths: *paths, Hops: *hops,
		Layers: *layers, Width: *width,
		K: *k, N: *n, Cols: *cols,
		P: *p, Degree: *degree,
		Rand: rand.New(rand.NewSource(*seed)),
	})
	if err != nil {
		return err
	}
	// A family that sets no structure leaves z as the zero value, which
	// normalizes to {∅} — detect "unset" by the empty corruption ground,
	// not by NumMaximal() == 0 (the zero value has one maximal set: ∅).
	if z.Ground().IsEmpty() { // not set by the family: derive from relays
		relays := g.Nodes().Minus(nodeset.Of(d, rcv))
		if *threshold > 0 {
			z = adversary.GlobalThreshold(relays, *threshold)
		} else {
			z = gen.Singletons(relays)
		}
	}
	if *spec {
		level, err := cliutil.ParseKnowledge(*knowledge)
		if err != nil {
			return err
		}
		s := cliutil.InstanceSpec{Graph: g, Z: z, Knowledge: level, Dealer: d, Receiver: rcv}
		fmt.Fprint(out, s.Format())
		return nil
	}
	fmt.Fprintf(out, "-graph %q -structure %q -dealer %d -receiver %d\n",
		cliutil.FormatEdgeList(g), cliutil.FormatStructure(z), d, rcv)
	return nil
}
