// Command rmtgen emits problem instances in the textual format consumed by
// rmtcheck and rmtsim: an edge list, an adversary structure, and the
// dealer/receiver pair.
//
// Usage:
//
//	rmtgen -family chimera -k 3
//	rmtgen -family disjoint -paths 3 -hops 2
//	rmtgen -family layered -layers 2 -width 3 -threshold 1
//	rmtgen -family random -n 8 -p 0.4 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"rmt/internal/adversary"
	"rmt/internal/cliutil"
	"rmt/internal/gen"
	"rmt/internal/graph"
	"rmt/internal/nodeset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtgen", flag.ContinueOnError)
	var (
		family    = fs.String("family", "disjoint", "disjoint|layered|chimera|line|ring|grid|random|star|bipartite|butterfly|regular")
		paths     = fs.Int("paths", 3, "disjoint: number of relay chains")
		hops      = fs.Int("hops", 1, "disjoint: relays per chain")
		layers    = fs.Int("layers", 2, "layered: number of layers")
		width     = fs.Int("width", 3, "layered: relays per layer")
		k         = fs.Int("k", 2, "chimera: branches")
		n         = fs.Int("n", 8, "line/ring/random: nodes; grid: rows")
		cols      = fs.Int("cols", 3, "grid: columns")
		p         = fs.Float64("p", 0.4, "random: edge probability")
		seed      = fs.Int64("seed", 1, "random: RNG seed")
		threshold = fs.Int("threshold", 0, "use a global threshold structure over the relays (0 = singletons)")
		spec      = fs.Bool("spec", false, "emit the instance-spec file format (for rmtcheck/rmtsim -file)")
		knowledge = fs.String("knowledge", "adhoc", "knowledge level recorded in -spec output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		g      *graph.Graph
		z      adversary.Structure
		d, rcv int
	)
	switch *family {
	case "disjoint":
		g, d, rcv = gen.DisjointPaths(*paths, *hops)
	case "layered":
		g, d, rcv = gen.Layered(*layers, *width)
	case "chimera":
		g, z, d, rcv = gen.ChimeraScaled(*k)
	case "line":
		g, d, rcv = gen.Line(*n), 0, *n-1
	case "ring":
		g, d, rcv = gen.Ring(*n), 0, *n/2
	case "grid":
		g, d, rcv = gen.Grid(*n, *cols), 0, (*n)*(*cols)-1
	case "random":
		g, d, rcv = gen.RandomGNP(rand.New(rand.NewSource(*seed)), *n, *p), 0, *n-1
	case "star":
		g, d, rcv = gen.Star(*n), 0, *n-1
	case "bipartite":
		g, d, rcv = gen.CompleteBipartite(*n, *cols), 0, *n+*cols-1
	case "butterfly":
		g = gen.Butterfly(*k)
		d, rcv = 0, g.MaxID()
	case "regular":
		g, d, rcv = gen.RandomRegular(rand.New(rand.NewSource(*seed)), *n, 3), 0, *n-1
	default:
		return fmt.Errorf("unknown family %q", *family)
	}
	if z.NumMaximal() == 0 { // not set by the family: derive from relays
		relays := g.Nodes().Minus(nodeset.Of(d, rcv))
		if *threshold > 0 {
			z = adversary.GlobalThreshold(relays, *threshold)
		} else {
			z = gen.Singletons(relays)
		}
	}
	if *spec {
		level, err := cliutil.ParseKnowledge(*knowledge)
		if err != nil {
			return err
		}
		s := cliutil.InstanceSpec{Graph: g, Z: z, Knowledge: level, Dealer: d, Receiver: rcv}
		fmt.Fprint(out, s.Format())
		return nil
	}
	fmt.Fprintf(out, "-graph %q -structure %q -dealer %d -receiver %d\n",
		cliutil.FormatEdgeList(g), cliutil.FormatStructure(z), d, rcv)
	return nil
}
