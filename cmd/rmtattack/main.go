// Command rmtattack runs the randomized Theorem-4 safety sweep: seeded
// trials sampling instances and admissible corruption sets, throwing every
// registered Byzantine strategy at every registered protocol on both
// engines, and asserting that no honest node ever decides a value other
// than x_D. A deliberately gullible canary decision rule is attacked in
// the same battery to prove the oracle has teeth.
//
// With -schedules, every (instance, protocol, strategy) cell additionally
// runs under the async engine with each named seeded delivery schedule
// (delay, reorder, partition-then-heal), asserting the same oracle on every
// schedule and transcript agreement between the zero-fault schedule and the
// synchronous engines.
//
// With -mabudgets, every cell is additionally crossed with a message
// adversary: for each budget d, one lockstep run per stock suppression
// policy (targeted, random, eclipse) and one extra async run per configured
// schedule under the seeded random policy. The safety oracle must hold
// under message loss, and a gullible MBRB canary — a receiver that ignores
// the protocol's distinct-sender quorums — must be flagged or the sweep
// fails.
//
// Usage:
//
//	rmtattack -trials 200 -seed 1 -out traces.jsonl
//	rmtattack -trials 100 -seed 2 -engines lockstep -schedules all
//	rmtattack -trials 60 -seed 4 -engines lockstep -schedules all -mabudgets 1,2
//
// Exit status is non-zero on any safety violation, engine disagreement,
// or an unflagged canary.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rmt/internal/attack"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtattack:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtattack", flag.ContinueOnError)
	var (
		trials     = fs.Int("trials", 200, "number of seeded fuzz trials")
		seed       = fs.Int64("seed", 1, "root seed; per-trial seeds derive deterministically")
		workers    = fs.Int("workers", 0, "parallel workers (<=0 = GOMAXPROCS)")
		protocols  = fs.String("protocols", "", "comma-separated protocol subset (default: all registered)")
		strategies = fs.String("strategies", "", "comma-separated strategy subset (default: all registered)")
		engines    = fs.String("engines", "", "comma-separated engines: lockstep,goroutine,async (default: lockstep+goroutine)")
		schedules  = fs.String("schedules", "", "comma-separated async schedules to cross in (or \"all\"); each adds a seeded async run per cell")
		mabudgets  = fs.String("mabudgets", "", "comma-separated message-adversary suppression budgets; each crosses every cell with the stock suppression policies")
		maxRounds  = fs.Int("maxrounds", 0, "round cap per run (0 = default)")
		outPath    = fs.String("out", "", "JSONL stream of run records and attack traces (\"-\" = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := attack.Config{
		Seed:      *seed,
		Trials:    *trials,
		Workers:   *workers,
		MaxRounds: *maxRounds,
	}
	if *protocols != "" {
		cfg.Protocols = splitList(*protocols)
	}
	if *strategies != "" {
		cfg.Strategies = splitList(*strategies)
	}
	if *engines != "" {
		engs, err := attack.ParseEngines(*engines)
		if err != nil {
			return err
		}
		cfg.Engines = engs
	}
	if *schedules != "" {
		scheds, err := attack.ParseSchedules(*schedules)
		if err != nil {
			return err
		}
		cfg.Schedules = scheds
	}
	if *mabudgets != "" {
		budgets, err := attack.ParseBudgets(*mabudgets)
		if err != nil {
			return err
		}
		cfg.MABudgets = budgets
	}
	if *outPath != "" {
		w := out
		if *outPath != "-" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		cfg.Out = w
	}
	rep, err := attack.Sweep(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, rep.Summary())
	for _, v := range rep.Violations {
		fmt.Fprintln(out, "VIOLATION:", v)
	}
	for _, m := range rep.Mismatches {
		fmt.Fprintf(out, "ENGINE MISMATCH: trial %d %s %s/%s: %s\n",
			m.Trial, m.Instance, m.Protocol, m.Strategy, m.Detail)
	}
	return rep.Err()
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}
