package main

import (
	"strings"
	"testing"
)

func TestRunSmallSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-trials", "6", "-seed", "11", "-workers", "2", "-out", "-"}, &sb)
	if err != nil {
		t.Fatalf("sweep failed: %v\noutput:\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, `"type":"run"`) {
		t.Fatalf("no run records in JSONL stream:\n%s", out)
	}
	if !strings.Contains(out, "0 violations") || !strings.Contains(out, "canary flagged") {
		t.Fatalf("summary missing:\n%s", out)
	}
}

func TestRunSubsetFlags(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-trials", "2", "-seed", "5",
		"-protocols", "pka", "-strategies", "value-flip,silent",
		"-engines", "lockstep",
	}, &sb)
	if err != nil {
		t.Fatalf("sweep failed: %v\noutput:\n%s", err, sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{"-engines", "warp"},
		{"-trials", "1", "-protocols", "nope"},
		{"-trials", "1", "-strategies", "nope"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}
