// Command rmtbench runs the full experiment suite and prints every table of
// EXPERIMENTS.md (experiments E1–E13 and figure reproductions F1–F2).
//
// Usage:
//
//	rmtbench                       # full suite, default seed/trials
//	rmtbench -trials 100           # heavier randomized sweeps
//	rmtbench -only E2,F1           # a subset of tables
//	rmtbench -workers 1            # sequential trials (tables are identical)
//	rmtbench -benchjson BENCH.json # protocol micro-benchmarks → JSON, no tables
//	rmtbench -compare BENCH.json   # regression guard: non-zero exit when any
//	                               # benchmark is slower/bigger than the baseline
//
// The -cpuprofile and -memprofile flags write pprof profiles covering
// whatever the invocation ran (tables, -benchjson, or -compare); inspect
// them with `go tool pprof`.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rmt/internal/eval"
	"rmt/internal/network"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtbench:", err)
		// Usage errors (bad flags, unknown registry names) exit 2;
		// failures of a valid invocation exit 1 — the rmtsim contract.
		if errors.As(err, &usageError{}) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// usageError marks invalid invocations (unknown engine/schedule names),
// distinguishing them from failures of a valid run.
type usageError struct{ err error }

func (e usageError) Error() string { return e.err.Error() }
func (e usageError) Unwrap() error { return e.err }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtbench", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", 2016, "RNG seed for the randomized sweeps")
		trials     = fs.Int("trials", 60, "random trials per configuration")
		only       = fs.String("only", "", "comma-separated table IDs to run (default: all)")
		workers    = fs.Int("workers", 0, "worker-pool size for randomized trials (0 = one per CPU)")
		benchjson  = fs.String("benchjson", "", "run the protocol micro-benchmarks and write JSON results to this path instead of tables")
		compare    = fs.String("compare", "", "run the micro-benchmarks and fail when any regresses > 25% vs this baseline BENCH.json")
		engine     = fs.String("engine", "lockstep", "execution engine for the experiment runs: "+strings.Join(network.EngineNames(), "|"))
		sched      = fs.String("sched", "sync", "async schedule: "+strings.Join(network.SchedulerNames(), "|"))
		cpuprofile = fs.String("cpuprofile", "", "write a CPU pprof profile of the run to this path")
		memprofile = fs.String("memprofile", "", "write an end-of-run heap pprof profile to this path")
	)
	if err := fs.Parse(args); err != nil {
		return usageError{err}
	}
	eng, err := network.EngineByName(*engine)
	if err != nil {
		return usageError{err}
	}
	var scheduler network.Scheduler
	if eng == network.Async {
		if scheduler, err = network.NewScheduler(*sched, *seed); err != nil {
			return usageError{err}
		}
	} else if *sched != "sync" {
		return usageError{fmt.Errorf("-sched %q requires -engine async", *sched)}
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rmtbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so live objects, not garbage, dominate
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rmtbench: memprofile:", err)
			}
		}()
	}
	if *benchjson != "" {
		return writeBenchJSON(*benchjson, out)
	}
	if *compare != "" {
		return compareBenchJSON(*compare, out)
	}
	p := eval.Params{Seed: *seed, Trials: *trials, Workers: *workers, Engine: eng, Scheduler: scheduler}

	wanted := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	experiments := []struct {
		id  string
		run func(eval.Params) *eval.Table
	}{
		{"E1", eval.E1JoinAlgebra},
		{"E2", eval.E2PKATightness},
		{"E3", eval.E3Safety},
		{"E4", eval.E4ZCPATightness},
		{"E5", eval.E5KnowledgeSweep},
		{"E6", eval.E6MinimalKnowledge},
		{"E7", eval.E7DecisionProtocol},
		{"E8", eval.E8Scaling},
		{"E9", eval.E9BroadcastTightness},
		{"E10", eval.E10HorizonAblation},
		{"E11", eval.E11RepresentationAblation},
		{"E12", eval.E12Discovery},
		{"E13", eval.E13Exhaustive},
		{"F1", eval.F1BasicFrontier},
		{"F2", eval.F2IndistinguishableRuns},
	}
	ran := 0
	for _, e := range experiments {
		if len(wanted) > 0 && !wanted[e.id] {
			continue
		}
		e.run(p).Render(out)
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no tables matched -only=%q", *only)
	}
	return nil
}
