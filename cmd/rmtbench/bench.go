package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"rmt"
	"rmt/internal/gen"
	"rmt/internal/nodeset"
)

// benchResult is one line of BENCH.json — the machine-readable counterpart
// of `go test -bench . -benchmem` for the protocol hot paths.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// chainInstance mirrors bench_test.go's benchInstance: 3 disjoint relay
// chains with singleton corruption, solvability depending on hops/knowledge.
func chainInstance(hops int, level gen.Knowledge) (*rmt.Instance, error) {
	g, d, r := gen.DisjointPaths(3, hops)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
	return gen.Build(g, z, level, d, r)
}

func chimeraInstance(scale int) (*rmt.Instance, error) {
	g, z, d, r := gen.ChimeraScaled(scale)
	return gen.Build(g, z, gen.AdHoc, d, r)
}

// protoBench declares one registry-resolved protocol run benchmark.
type protoBench struct {
	name     string
	protocol string
	instance func() (*rmt.Instance, error)
	opts     rmt.RunOptions
}

// protoBenches is the protocol hot-path benchmark table. Every entry runs
// through the registry, so a new protocol variant becomes a table row, not
// a new code path. The PKARun/PKARunNoMemo/ZCPARun names predate the
// registry and stay stable for BENCH.json comparability.
var protoBenches = []protoBench{
	{"PKARun", rmt.ProtocolPKA,
		func() (*rmt.Instance, error) { return chainInstance(2, gen.Radius2) },
		rmt.RunOptions{}},
	{"PKARunNoMemo", rmt.ProtocolPKA,
		func() (*rmt.Instance, error) { return chainInstance(2, gen.Radius2) },
		rmt.RunOptions{DisableMemo: true}},
	{"ZCPARun", rmt.ProtocolZCPA,
		func() (*rmt.Instance, error) { return chainInstance(1, gen.AdHoc) },
		rmt.RunOptions{}},
	{"PPARun", rmt.ProtocolPPA,
		func() (*rmt.Instance, error) { return chainInstance(2, gen.FullKnowledge) },
		rmt.RunOptions{}},
	{"BroadcastRun", rmt.ProtocolBroadcast,
		func() (*rmt.Instance, error) { return chainInstance(1, gen.AdHoc) },
		rmt.RunOptions{}},
}

// runBenches runs the micro-benchmark suite via testing.Benchmark, printing
// one line per benchmark as it completes.
func runBenches(out io.Writer) ([]benchResult, error) {
	type namedBench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := make([]namedBench, 0, len(protoBenches)+2)
	for _, pb := range protoBenches {
		in, err := pb.instance()
		if err != nil {
			return nil, err
		}
		name, opts := pb.protocol, pb.opts
		benches = append(benches, namedBench{pb.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rmt.RunProtocol(name, in, "x", nil, opts); err != nil {
					b.Fatal(err)
				}
			}
		}})
	}
	chimera, err := chimeraInstance(3)
	if err != nil {
		return nil, err
	}
	benches = append(benches,
		namedBench{"RMTCutCheck", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rmt.FindRMTCut(chimera)
			}
		}},
		namedBench{"ZppCutCheck", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rmt.FindZppCut(chimera)
			}
		}})
	results := make([]benchResult, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := benchResult{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(out, "%-16s %12.0f ns/op %8d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	return results, nil
}

// writeBenchJSON runs the micro-benchmark suite and writes the results as a
// JSON array to path.
func writeBenchJSON(path string, out io.Writer) error {
	results, err := runBenches(out)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
