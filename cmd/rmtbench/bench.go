package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"rmt"
	"rmt/internal/gen"
	"rmt/internal/nodeset"
)

// benchResult is one line of BENCH.json — the machine-readable counterpart
// of `go test -bench . -benchmem` for the protocol hot paths.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// chainInstance mirrors bench_test.go's benchInstance: 3 disjoint relay
// chains with singleton corruption, solvability depending on hops/knowledge.
func chainInstance(hops int, level gen.Knowledge) (*rmt.Instance, error) {
	g, d, r := gen.DisjointPaths(3, hops)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
	return gen.Build(g, z, level, d, r)
}

func chimeraInstance(scale int) (*rmt.Instance, error) {
	g, z, d, r := gen.ChimeraScaled(scale)
	return gen.Build(g, z, gen.AdHoc, d, r)
}

// writeBenchJSON runs the micro-benchmark suite via testing.Benchmark and
// writes the results as a JSON array to path.
func writeBenchJSON(path string, out io.Writer) error {
	pka, err := chainInstance(2, gen.Radius2)
	if err != nil {
		return err
	}
	zcpaIn, err := chainInstance(1, gen.AdHoc)
	if err != nil {
		return err
	}
	chimera, err := chimeraInstance(3)
	if err != nil {
		return err
	}
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"PKARun", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rmt.RunPKA(pka, "x", nil, rmt.PKAOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"PKARunNoMemo", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rmt.RunPKA(pka, "x", nil, rmt.PKAOptions{DisableMemo: true}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"ZCPARun", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rmt.RunZCPA(zcpaIn, "x", nil, rmt.ZCPAOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"RMTCutCheck", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rmt.FindRMTCut(chimera)
			}
		}},
		{"ZppCutCheck", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rmt.FindZppCut(chimera)
			}
		}},
	}
	results := make([]benchResult, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := benchResult{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(out, "%-16s %12.0f ns/op %8d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
