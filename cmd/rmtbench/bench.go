package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"rmt"
	"rmt/internal/adversary"
	"rmt/internal/benchdef"
	"rmt/internal/gen"
	"rmt/internal/instance"
)

// benchResult is one line of BENCH.json — the machine-readable counterpart
// of `go test -bench . -benchmem` for the protocol hot paths.
type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

func chimeraInstance(scale int) (*rmt.Instance, error) {
	g, z, d, r := gen.ChimeraScaled(scale)
	return gen.Build(g, z, gen.AdHoc, d, r)
}

// churnRevisions builds the RMTCutIncremental workload (the same one as
// internal/core's bench twin): the 240-node line with a corruptible middle
// relay — always infeasible — followed by 16 dealer-side chord revisions,
// each leaving the previous witness repairable.
func churnRevisions() ([]*rmt.Instance, error) {
	const n = 240
	base, err := gen.Build(gen.Line(n), adversary.FromSlices([]int{n / 2}), gen.AdHoc, 0, n-1)
	if err != nil {
		return nil, err
	}
	out := []*rmt.Instance{base}
	cur := base
	for i := 0; i < 16; i++ {
		cur, err = gen.ApplyDelta(cur, instance.Delta{AddEdges: [][2]int{{i, i + 2}}}, gen.AdHoc)
		if err != nil {
			return nil, err
		}
		out = append(out, cur)
	}
	return out, nil
}

// runBenches runs the micro-benchmark suite via testing.Benchmark, printing
// one line per benchmark as it completes. The protocol hot-path entries come
// from internal/benchdef — the same table bench_test.go runs as
// sub-benchmarks — so BENCH.json and `go test -bench` measure identical
// workloads by construction.
func runBenches(out io.Writer) ([]benchResult, error) {
	type namedBench struct {
		name string
		fn   func(b *testing.B)
	}
	benches := make([]namedBench, 0, len(benchdef.ProtoBenches)+2)
	for _, pb := range benchdef.ProtoBenches {
		in, err := pb.Instance()
		if err != nil {
			return nil, err
		}
		name, opts, mustDecide := pb.Protocol, pb.Opts, pb.MustDecide
		benches = append(benches, namedBench{pb.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := rmt.RunProtocol(name, in, "x", nil, opts)
				if err != nil {
					b.Fatal(err)
				}
				if mustDecide {
					if _, ok := res.DecisionOf(in.Receiver); !ok {
						b.Fatal("undecided")
					}
				}
			}
		}})
	}
	chimera, err := chimeraInstance(3)
	if err != nil {
		return nil, err
	}
	benches = append(benches,
		namedBench{"RMTCutCheck", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rmt.FindRMTCut(chimera)
			}
		}},
		namedBench{"ZppCutCheck", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rmt.FindZppCut(chimera)
			}
		}})
	revisions, err := churnRevisions()
	if err != nil {
		return nil, err
	}
	benches = append(benches,
		namedBench{"RMTCutIncrFresh", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, found := rmt.FindRMTCut(revisions[i%len(revisions)]); !found {
					b.Fatal("churn bench instance must be infeasible")
				}
			}
		}},
		namedBench{"RMTCutIncremental", func(b *testing.B) {
			ic := rmt.IncrementalRMTCut{}
			if _, found := ic.Check(revisions[0]); !found {
				b.Fatal("churn bench instance must be infeasible")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, found := ic.Check(revisions[i%len(revisions)]); !found {
					b.Fatal("churn bench instance must be infeasible")
				}
			}
		}})
	results := make([]benchResult, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := benchResult{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(out, "%-16s %12.0f ns/op %8d B/op %6d allocs/op\n",
			res.Name, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		results = append(results, res)
	}
	return results, nil
}

// writeBenchJSON runs the micro-benchmark suite and writes the results as a
// JSON array to path.
func writeBenchJSON(path string, out io.Writer) error {
	results, err := runBenches(out)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
