package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// regressionThreshold is the maximum tolerated ns/op growth over the
// committed baseline before compareBenchJSON fails: generous enough to ride
// out scheduler noise on shared machines, tight enough to catch a protocol
// hot path accidentally gaining an order of work.
const regressionThreshold = 0.25

// compareBenchJSON re-runs the micro-benchmark suite and compares it
// against the baseline BENCH.json at path, returning an error (→ non-zero
// exit) when any benchmark regressed by more than regressionThreshold.
// Benchmarks present on only one side are reported but don't fail the
// guard, so adding a benchmark doesn't break older baselines.
func compareBenchJSON(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline []benchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	current, err := runBenches(out)
	if err != nil {
		return err
	}
	return compareResults(baseline, current, path, out)
}

// compareResults applies the regression rule to a baseline/current pair.
//
// Every entry on both sides must have a finite, positive ns/op. A zero, NaN
// or Inf baseline would make every ratio comparison vacuously false (NaN
// compares false with everything; x/0 is +Inf only on one side), turning the
// guard into a silent pass — so degenerate measurements are a hard error,
// not a skip.
func compareResults(baseline, current []benchResult, path string, out io.Writer) error {
	base := make(map[string]benchResult, len(baseline))
	for _, r := range baseline {
		if !finitePositive(r.NsPerOp) {
			return fmt.Errorf("baseline %s: %s has degenerate ns/op %v; refusing to compare", path, r.Name, r.NsPerOp)
		}
		base[r.Name] = r
	}
	var regressions []string
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		if !finitePositive(cur.NsPerOp) {
			return fmt.Errorf("current run: %s has degenerate ns/op %v; refusing to compare", cur.Name, cur.NsPerOp)
		}
		b, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(out, "%-16s not in baseline — skipped\n", cur.Name)
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+regressionThreshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.0f%%)",
					cur.Name, cur.NsPerOp, b.NsPerOp, 100*(ratio-1)))
		}
		fmt.Fprintf(out, "%-16s %12.0f ns/op  baseline %12.0f  (%+6.1f%%)  %s\n",
			cur.Name, cur.NsPerOp, b.NsPerOp, 100*(ratio-1), verdict)
	}
	for _, r := range baseline {
		if !seen[r.Name] {
			fmt.Fprintf(out, "%-16s only in baseline — skipped\n", r.Name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed > %.0f%%:\n  %s",
			len(regressions), 100*regressionThreshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "benchguard: all benchmarks within %.0f%% of %s\n", 100*regressionThreshold, path)
	return nil
}

// finitePositive reports whether v is a usable ns/op measurement.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}
