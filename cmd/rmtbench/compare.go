package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// regressionThreshold is the maximum tolerated ns/op (and B/op) growth over
// the committed baseline before compareBenchJSON fails: generous enough to
// ride out scheduler noise on shared machines, tight enough to catch a
// protocol hot path accidentally gaining an order of work.
const regressionThreshold = 0.25

// Allocation counts, unlike wall time, are deterministic modulo GC-driven
// pool evictions, so they get no ratio slack: any allocs/op increase over
// the baseline is a regression. This is what keeps the receiver hot path's
// sub-100-allocs property from silently eroding one alloc at a time.

// compareBenchJSON re-runs the micro-benchmark suite and compares it
// against the baseline BENCH.json at path, returning an error (→ non-zero
// exit) when any benchmark regressed by more than regressionThreshold.
// Benchmarks present on only one side are reported but don't fail the
// guard, so adding a benchmark doesn't break older baselines.
func compareBenchJSON(path string, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var baseline []benchResult
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	current, err := runBenches(out)
	if err != nil {
		return err
	}
	return compareResults(baseline, current, path, out)
}

// compareResults applies the regression rules to a baseline/current pair:
// ns/op and B/op may grow by at most regressionThreshold, allocs/op not at
// all (see above). Allocation improvements are flagged so the baseline gets
// refreshed — otherwise the next real regression hides inside the slack the
// improvement left behind.
//
// Every entry on both sides must have a finite, positive ns/op. A zero, NaN
// or Inf baseline would make every ratio comparison vacuously false (NaN
// compares false with everything; x/0 is +Inf only on one side), turning the
// guard into a silent pass — so degenerate measurements are a hard error,
// not a skip. Allocs/B per op have no such trap: they are non-negative
// integers straight from the runtime, and a zero baseline (an allocation-free
// benchmark) is legitimate — any current allocation is then an increase.
func compareResults(baseline, current []benchResult, path string, out io.Writer) error {
	base := make(map[string]benchResult, len(baseline))
	for _, r := range baseline {
		if !finitePositive(r.NsPerOp) {
			return fmt.Errorf("baseline %s: %s has degenerate ns/op %v; refusing to compare", path, r.Name, r.NsPerOp)
		}
		base[r.Name] = r
	}
	var regressions []string
	seen := make(map[string]bool, len(current))
	for _, cur := range current {
		seen[cur.Name] = true
		if !finitePositive(cur.NsPerOp) {
			return fmt.Errorf("current run: %s has degenerate ns/op %v; refusing to compare", cur.Name, cur.NsPerOp)
		}
		b, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(out, "%-16s not in baseline — skipped\n", cur.Name)
			continue
		}
		ratio := cur.NsPerOp / b.NsPerOp
		verdict := "ok"
		if ratio > 1+regressionThreshold {
			verdict = "REGRESSION(ns)"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.0f%%)",
					cur.Name, cur.NsPerOp, b.NsPerOp, 100*(ratio-1)))
		}
		if cur.AllocsPerOp > b.AllocsPerOp {
			verdict = "REGRESSION(allocs)"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op vs baseline %d allocs/op",
					cur.Name, cur.AllocsPerOp, b.AllocsPerOp))
		} else if cur.AllocsPerOp < b.AllocsPerOp {
			fmt.Fprintf(out, "%-16s improved to %d allocs/op (baseline %d) — refresh %s to lock it in\n",
				cur.Name, cur.AllocsPerOp, b.AllocsPerOp, path)
		}
		if b.BytesPerOp > 0 && float64(cur.BytesPerOp)/float64(b.BytesPerOp) > 1+regressionThreshold {
			verdict = "REGRESSION(bytes)"
			regressions = append(regressions,
				fmt.Sprintf("%s: %d B/op vs baseline %d B/op",
					cur.Name, cur.BytesPerOp, b.BytesPerOp))
		}
		fmt.Fprintf(out, "%-16s %12.0f ns/op %8d B/op %6d allocs/op  baseline %12.0f/%d/%d  (%+6.1f%% ns)  %s\n",
			cur.Name, cur.NsPerOp, cur.BytesPerOp, cur.AllocsPerOp,
			b.NsPerOp, b.BytesPerOp, b.AllocsPerOp, 100*(ratio-1), verdict)
	}
	for _, r := range baseline {
		if !seen[r.Name] {
			fmt.Fprintf(out, "%-16s only in baseline — skipped\n", r.Name)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed (ns/B > %.0f%% growth, or any allocs/op increase):\n  %s",
			len(regressions), 100*regressionThreshold, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(out, "benchguard: all benchmarks within %.0f%% ns/B and ≤ baseline allocs of %s\n", 100*regressionThreshold, path)
	return nil
}

// finitePositive reports whether v is a usable ns/op measurement.
func finitePositive(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v > 0
}
