package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E1,F1", "-trials", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== E1") || !strings.Contains(out, "== F1") {
		t.Fatalf("missing tables:\n%s", out)
	}
	if strings.Contains(out, "== E8") {
		t.Fatal("ran tables outside -only")
	}
}

func TestRunWorkersFlagDeterministic(t *testing.T) {
	var seq, par strings.Builder
	if err := run([]string{"-only", "E1", "-trials", "5", "-workers", "1"}, &seq); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-only", "E1", "-trials", "5", "-workers", "4"}, &par); err != nil {
		t.Fatal(err)
	}
	if seq.String() != par.String() {
		t.Fatalf("-workers changed table output:\n%s\nvs\n%s", seq.String(), par.String())
	}
}

func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the micro-benchmark suite")
	}
	path := filepath.Join(t.TempDir(), "BENCH.json")
	var sb strings.Builder
	if err := run([]string{"-benchjson", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Name        string  `json:"name"`
		NsPerOp     float64 `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
	}
	if err := json.Unmarshal(data, &results); err != nil {
		t.Fatalf("BENCH.json is not valid JSON: %v\n%s", err, data)
	}
	if len(results) < 4 {
		t.Fatalf("only %d benchmark entries", len(results))
	}
	for _, r := range results {
		if r.Name == "" || r.NsPerOp <= 0 {
			t.Fatalf("degenerate entry %+v", r)
		}
	}
}

func TestRunNoMatch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "ZZ"}, &sb); err == nil {
		t.Fatal("no error for unmatched -only")
	}
}

func TestRunAllTablesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var sb strings.Builder
	if err := run([]string{"-trials", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "F1", "F2"} {
		if !strings.Contains(sb.String(), "== "+id) {
			t.Errorf("missing table %s", id)
		}
	}
}
