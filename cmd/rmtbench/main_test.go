package main

import (
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E1,F1", "-trials", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "== E1") || !strings.Contains(out, "== F1") {
		t.Fatalf("missing tables:\n%s", out)
	}
	if strings.Contains(out, "== E8") {
		t.Fatal("ran tables outside -only")
	}
}

func TestRunNoMatch(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "ZZ"}, &sb); err == nil {
		t.Fatal("no error for unmatched -only")
	}
}

func TestRunAllTablesQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var sb strings.Builder
	if err := run([]string{"-trials", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "F1", "F2"} {
		if !strings.Contains(sb.String(), "== "+id) {
			t.Errorf("missing table %s", id)
		}
	}
}
