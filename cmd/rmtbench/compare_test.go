package main

import (
	"math"
	"strings"
	"testing"
)

func TestCompareResults(t *testing.T) {
	baseline := []benchResult{
		{Name: "PKARun", NsPerOp: 1000},
		{Name: "ZCPARun", NsPerOp: 500},
		{Name: "Retired", NsPerOp: 10},
	}
	t.Run("within-threshold", func(t *testing.T) {
		var sb strings.Builder
		current := []benchResult{
			{Name: "PKARun", NsPerOp: 1200}, // +20% — noise
			{Name: "ZCPARun", NsPerOp: 400}, // faster
			{Name: "Fresh", NsPerOp: 77},    // no baseline — skipped
		}
		if err := compareResults(baseline, current, "BENCH.json", &sb); err != nil {
			t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
		}
		out := sb.String()
		if !strings.Contains(out, "Fresh") || !strings.Contains(out, "Retired") {
			t.Fatalf("one-sided benchmarks not reported:\n%s", out)
		}
	})
	t.Run("regression", func(t *testing.T) {
		var sb strings.Builder
		current := []benchResult{
			{Name: "PKARun", NsPerOp: 1300}, // +30% — over the 25% line
			{Name: "ZCPARun", NsPerOp: 500},
		}
		err := compareResults(baseline, current, "BENCH.json", &sb)
		if err == nil || !strings.Contains(err.Error(), "PKARun") {
			t.Fatalf("err = %v, want PKARun regression", err)
		}
	})
}

// Allocation counts get no ratio slack: one extra alloc/op over the baseline
// fails the guard, while bytes ride the same 25% tolerance as wall time.
func TestCompareResultsGatesAllocsAndBytes(t *testing.T) {
	baseline := []benchResult{
		{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 35, BytesPerOp: 5000},
	}
	cases := []struct {
		name    string
		current benchResult
		wantErr string // "" → must pass
	}{
		{"identical", benchResult{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 35, BytesPerOp: 5000}, ""},
		{"one-extra-alloc", benchResult{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 36, BytesPerOp: 5000}, "allocs/op"},
		{"alloc-improvement", benchResult{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 20, BytesPerOp: 5000}, ""},
		{"bytes-within-slack", benchResult{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 35, BytesPerOp: 6000}, ""},
		{"bytes-over-slack", benchResult{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 35, BytesPerOp: 6500}, "B/op"},
		{"allocs-and-ns", benchResult{Name: "PKARun", NsPerOp: 2000, AllocsPerOp: 99, BytesPerOp: 5000}, "allocs/op"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			err := compareResults(baseline, []benchResult{tc.current}, "BENCH.json", &sb)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want error mentioning %q", err, tc.wantErr)
			}
		})
	}
	t.Run("improvement-notes-refresh", func(t *testing.T) {
		var sb strings.Builder
		current := []benchResult{{Name: "PKARun", NsPerOp: 1000, AllocsPerOp: 20, BytesPerOp: 5000}}
		if err := compareResults(baseline, current, "BENCH.json", &sb); err != nil {
			t.Fatalf("unexpected failure: %v", err)
		}
		if !strings.Contains(sb.String(), "refresh BENCH.json") {
			t.Fatalf("alloc improvement not flagged for baseline refresh:\n%s", sb.String())
		}
	})
	// A zero-alloc baseline is legitimate, not degenerate: the guard then
	// rejects any current allocation.
	t.Run("zero-alloc-baseline", func(t *testing.T) {
		var sb strings.Builder
		zb := []benchResult{{Name: "Free", NsPerOp: 100}}
		if err := compareResults(zb, []benchResult{{Name: "Free", NsPerOp: 100}}, "BENCH.json", &sb); err != nil {
			t.Fatalf("zero-alloc identical pair failed: %v", err)
		}
		err := compareResults(zb, []benchResult{{Name: "Free", NsPerOp: 100, AllocsPerOp: 1}}, "BENCH.json", &sb)
		if err == nil || !strings.Contains(err.Error(), "allocs/op") {
			t.Fatalf("err = %v, want allocs/op regression from zero baseline", err)
		}
	})
}

// A zero/NaN/Inf baseline used to slide through silently: NaN compares
// false against the threshold and a zero baseline makes every current
// figure +Inf, which still isn't > 1.25 when the baseline is NaN too. All
// degenerate measurements must now be hard errors on either side.
func TestCompareResultsRejectsDegenerateEntries(t *testing.T) {
	good := []benchResult{{Name: "PKARun", NsPerOp: 1000}}
	cases := []struct {
		name              string
		baseline, current []benchResult
		wantErr           string
	}{
		{"zero-baseline", []benchResult{{Name: "PKARun", NsPerOp: 0}}, good, "degenerate"},
		{"nan-baseline", []benchResult{{Name: "PKARun", NsPerOp: math.NaN()}}, good, "degenerate"},
		{"inf-baseline", []benchResult{{Name: "PKARun", NsPerOp: math.Inf(1)}}, good, "degenerate"},
		{"negative-baseline", []benchResult{{Name: "PKARun", NsPerOp: -5}}, good, "degenerate"},
		{"nan-current", good, []benchResult{{Name: "PKARun", NsPerOp: math.NaN()}}, "degenerate"},
		{"zero-current", good, []benchResult{{Name: "PKARun", NsPerOp: 0}}, "degenerate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			err := compareResults(tc.baseline, tc.current, "BENCH.json", &sb)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want %q error", err, tc.wantErr)
			}
		})
	}
}

// Regression fixture for the original bug shape: a wildly slower current
// run against a NaN baseline must not pass.
func TestCompareResultsNaNBaselineDoesNotMaskRegression(t *testing.T) {
	baseline := []benchResult{{Name: "PKARun", NsPerOp: math.NaN()}}
	current := []benchResult{{Name: "PKARun", NsPerOp: 1e9}}
	var sb strings.Builder
	if err := compareResults(baseline, current, "BENCH.json", &sb); err == nil {
		t.Fatal("NaN baseline slid through the guard")
	}
}
