package main

import (
	"strings"
	"testing"
)

func TestCompareResults(t *testing.T) {
	baseline := []benchResult{
		{Name: "PKARun", NsPerOp: 1000},
		{Name: "ZCPARun", NsPerOp: 500},
		{Name: "Retired", NsPerOp: 10},
	}
	t.Run("within-threshold", func(t *testing.T) {
		var sb strings.Builder
		current := []benchResult{
			{Name: "PKARun", NsPerOp: 1200}, // +20% — noise
			{Name: "ZCPARun", NsPerOp: 400}, // faster
			{Name: "Fresh", NsPerOp: 77},    // no baseline — skipped
		}
		if err := compareResults(baseline, current, "BENCH.json", &sb); err != nil {
			t.Fatalf("unexpected failure: %v\n%s", err, sb.String())
		}
		out := sb.String()
		if !strings.Contains(out, "Fresh") || !strings.Contains(out, "Retired") {
			t.Fatalf("one-sided benchmarks not reported:\n%s", out)
		}
	})
	t.Run("regression", func(t *testing.T) {
		var sb strings.Builder
		current := []benchResult{
			{Name: "PKARun", NsPerOp: 1300}, // +30% — over the 25% line
			{Name: "ZCPARun", NsPerOp: 500},
		}
		err := compareResults(baseline, current, "BENCH.json", &sb)
		if err == nil || !strings.Contains(err.Error(), "PKARun") {
			t.Fatalf("err = %v, want PKARun regression", err)
		}
	})
}
