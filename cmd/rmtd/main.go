// Command rmtd is the RMT query daemon: a long-lived HTTP/JSON service
// answering feasibility queries (RMT-cut / 𝒵-pp-cut verdicts) and executing
// any registered protocol × engine × schedule × seed, with canonical-instance
// result caching and bounded-queue backpressure (see internal/server).
//
// Usage:
//
//	rmtd -addr :8080 -workers 0 -queue 256 -cache 1024 -timeout 30s
//
// Endpoints:
//
//	POST /v1/feasibility   {"graph":"0-1 ...","structure":"1;2","dealer":0,"receiver":4}
//	POST /v1/run           the above plus protocol/engine/schedule/seed/trials/...
//	GET  /v1/protocols     registered protocols, engines, schedules, attacks
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text format
//
// Fleet mode shards the cache horizontally (see internal/server): a router
// forwards each query to the shard owning its canonical instance key, and
// shards consult the owning peer's cache before computing:
//
//	rmtd -addr :8081 -self http://h:8081 -peers http://h:8081,http://h:8082
//	rmtd -addr :8082 -self http://h:8082 -peers http://h:8081,http://h:8082
//	rmtd -addr :8080 -router -shards http://h:8081,http://h:8082
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests finish (bounded by -drain), then the worker pool is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rmt/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rmtd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled or the listener
// fails. onReady, when non-nil, receives the bound address once the daemon
// accepts connections (used by tests binding port 0).
func run(ctx context.Context, args []string, logw io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("rmtd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "compute workers (0 = one per logical CPU)")
		queue   = fs.Int("queue", 256, "max queued requests before shedding with 429")
		cache   = fs.Int("cache", 1024, "result cache entries")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request compute deadline")
		drain   = fs.Duration("drain", 10*time.Second, "graceful shutdown bound")
		quiet   = fs.Bool("quiet", false, "suppress the request log")
		router  = fs.Bool("router", false, "run as the fleet router instead of a query shard")
		shards  = fs.String("shards", "", "router mode: comma-separated shard base URLs")
		peers   = fs.String("peers", "", "shard mode: comma-separated base URLs of every fleet shard (incl. this one)")
		self    = fs.String("self", "", "shard mode: this shard's own base URL (must appear in -peers)")
	)
	fs.SetOutput(logw)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqLog := logw
	if *quiet {
		reqLog = io.Discard
	}

	var handler http.Handler
	var closeFn func()
	role := "rmtd"
	switch {
	case *router:
		if *peers != "" || *self != "" {
			return fmt.Errorf("-peers/-self are shard flags; a -router forwards, it does not serve queries")
		}
		rt, err := server.NewRouter(server.RouterOptions{
			Shards:    splitURLs(*shards),
			LogWriter: reqLog,
		})
		if err != nil {
			return err
		}
		handler, closeFn, role = rt, func() {}, "rmtd-router"
	default:
		if *shards != "" {
			return fmt.Errorf("-shards requires -router")
		}
		peerList := splitURLs(*peers)
		if len(peerList) > 0 && !contains(peerList, *self) {
			return fmt.Errorf("-self %q must be one of -peers %v", *self, peerList)
		}
		srv := server.New(server.Options{
			Workers:        *workers,
			QueueDepth:     *queue,
			CacheSize:      *cache,
			RequestTimeout: *timeout,
			LogWriter:      reqLog,
			Peers:          peerList,
			Self:           *self,
		})
		handler, closeFn = srv, srv.Close
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeFn()
		return err
	}
	httpServer := &http.Server{Handler: handler}
	fmt.Fprintf(logw, "%s: listening on %s\n", role, ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		closeFn()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(logw, "%s: draining (up to %v)\n", role, *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		closeFn()
		return err
	}
	closeFn()
	fmt.Fprintf(logw, "%s: stopped\n", role)
	return nil
}

// splitURLs parses a comma-separated URL list, trimming blanks.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
