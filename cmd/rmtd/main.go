// Command rmtd is the RMT query daemon: a long-lived HTTP/JSON service
// answering feasibility queries (RMT-cut / 𝒵-pp-cut verdicts) and executing
// any registered protocol × engine × schedule × seed, with canonical-instance
// result caching and bounded-queue backpressure (see internal/server).
//
// Usage:
//
//	rmtd -addr :8080 -workers 0 -queue 256 -cache 1024 -timeout 30s
//
// Endpoints:
//
//	POST /v1/feasibility   {"graph":"0-1 ...","structure":"1;2","dealer":0,"receiver":4}
//	POST /v1/run           the above plus protocol/engine/schedule/seed/trials/...
//	GET  /v1/protocols     registered protocols, engines, schedules, attacks
//	GET  /healthz          liveness
//	GET  /metrics          Prometheus text format
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// requests finish (bounded by -drain), then the worker pool is released.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rmt/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "rmtd:", err)
		os.Exit(1)
	}
}

// run starts the daemon and blocks until ctx is cancelled or the listener
// fails. onReady, when non-nil, receives the bound address once the daemon
// accepts connections (used by tests binding port 0).
func run(ctx context.Context, args []string, logw io.Writer, onReady func(addr string)) error {
	fs := flag.NewFlagSet("rmtd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", ":8080", "listen address")
		workers = fs.Int("workers", 0, "compute workers (0 = one per logical CPU)")
		queue   = fs.Int("queue", 256, "max queued requests before shedding with 429")
		cache   = fs.Int("cache", 1024, "result cache entries")
		timeout = fs.Duration("timeout", 30*time.Second, "per-request compute deadline")
		drain   = fs.Duration("drain", 10*time.Second, "graceful shutdown bound")
		quiet   = fs.Bool("quiet", false, "suppress the request log")
	)
	fs.SetOutput(logw)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reqLog := logw
	if *quiet {
		reqLog = io.Discard
	}
	srv := server.New(server.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
		LogWriter:      reqLog,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpServer := &http.Server{Handler: srv}
	fmt.Fprintf(logw, "rmtd: listening on %s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(logw, "rmtd: draining (up to %v)\n", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpServer.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		srv.Close()
		return err
	}
	srv.Close()
	fmt.Fprintf(logw, "rmtd: stopped\n")
	return nil
}
