package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDaemonServesAndDrains boots the daemon on an ephemeral port, exercises
// a cached round trip, then cancels the context and checks the graceful
// drain completes.
func TestDaemonServesAndDrains(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-quiet"}, io.Discard,
			func(addr string) { ready <- addr })
	}()
	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("daemon never became ready")
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4}`
	for i := 0; i < 2; i++ {
		resp, err := http.Post(base+"/v1/feasibility", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("feasibility request %d: %d", i, resp.StatusCode)
		}
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(metrics), "rmtd_cache_hits_total 1") {
		t.Fatalf("metrics missing cache hit:\n%s", metrics)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not drain")
	}
}

func TestBadFlagsError(t *testing.T) {
	err := run(context.Background(), []string{"-addr"}, io.Discard, nil)
	if err == nil {
		t.Fatal("missing flag value should error")
	}
}

func TestFleetFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-router"},                       // router without shards
		{"-router", "-peers", "http://a"}, // router with shard flags
		{"-shards", "http://a"},           // shards without -router
		{"-peers", "http://a,http://b", "-self", "http://c"}, // self not in peers
	}
	for i, args := range cases {
		if err := run(context.Background(), args, io.Discard, nil); err == nil {
			t.Errorf("case %d (%v): no error", i, args)
		}
	}
}

// TestRouterModeBoots starts one shard and one router as the rmtd binary
// would, and drives a query through the router to its shard.
func TestRouterModeBoots(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	boot := func(args []string) (string, chan error) {
		ready := make(chan string, 1)
		done := make(chan error, 1)
		go func() {
			done <- run(ctx, append(args, "-addr", "127.0.0.1:0", "-quiet"), io.Discard,
				func(addr string) { ready <- addr })
		}()
		select {
		case addr := <-ready:
			return "http://" + addr, done
		case err := <-done:
			t.Fatalf("daemon exited before ready: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("daemon never became ready")
		}
		return "", nil
	}

	shardURL, shardDone := boot(nil)
	routerURL, routerDone := boot([]string{"-router", "-shards", shardURL})

	body := `{"graph":"0-1 1-2","structure":"1","dealer":0,"receiver":2}`
	resp, err := http.Post(routerURL+"/v1/feasibility", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("via router: %d", resp.StatusCode)
	}

	cancel()
	for _, done := range []chan error{shardDone, routerDone} {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("drain returned %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("daemon did not drain")
		}
	}
}
