// Command rmtcheck decides RMT feasibility for an instance: it evaluates
// the paper's tight conditions (RMT-cut for the partial knowledge model,
// RMT 𝒵-pp cut for the ad hoc model, 𝒵-pair cut for full knowledge),
// prints witnesses, the minimal knowledge radius, and the feasible
// receiver set for network design.
//
// Usage:
//
//	rmtcheck -graph "0-1 0-2 0-3 1-4 2-4 1-5 3-5 4-6 5-6" \
//	         -structure "1;2;3" -dealer 0 -receiver 6 -knowledge adhoc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rmt"
	"rmt/internal/cliutil"
	"rmt/internal/gen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtcheck:", err)
		os.Exit(1)
	}
}

// resolveSpec assembles the instance description from -file or from the
// individual flags.
func resolveSpec(file, graphStr, structStr, knowledge string, dealer, receiver int) (cliutil.InstanceSpec, error) {
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return cliutil.InstanceSpec{}, err
		}
		return cliutil.ParseInstanceSpec(string(data))
	}
	if graphStr == "" {
		return cliutil.InstanceSpec{}, fmt.Errorf("-graph (or -file) is required")
	}
	if receiver < 0 {
		return cliutil.InstanceSpec{}, fmt.Errorf("-receiver (or -file) is required")
	}
	g, err := rmt.ParseEdgeList(graphStr)
	if err != nil {
		return cliutil.InstanceSpec{}, err
	}
	z, err := cliutil.ParseStructure(structStr)
	if err != nil {
		return cliutil.InstanceSpec{}, err
	}
	level, err := cliutil.ParseKnowledge(knowledge)
	if err != nil {
		return cliutil.InstanceSpec{}, err
	}
	return cliutil.InstanceSpec{Graph: g, Z: z, Knowledge: level, Dealer: dealer, Receiver: receiver}, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtcheck", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "instance spec file (see rmtgen -spec); overrides the other instance flags")
		graphStr  = fs.String("graph", "", "edge list, e.g. \"0-1 1-2\" (required unless -file)")
		structStr = fs.String("structure", "", "adversary structure, e.g. \"1,2;3\"")
		dealer    = fs.Int("dealer", 0, "dealer node ID")
		receiver  = fs.Int("receiver", -1, "receiver node ID (required unless -file)")
		knowledge = fs.String("knowledge", "adhoc", "adhoc|radius1|radius2|radius3|full")
		design    = fs.Bool("design", false, "also list all feasible receivers (network design phase)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec, err := resolveSpec(*file, *graphStr, *structStr, *knowledge, *dealer, *receiver)
	if err != nil {
		return err
	}
	g, z, level := spec.Graph, spec.Z, spec.Knowledge
	*dealer, *receiver = spec.Dealer, spec.Receiver
	in, err := spec.Instance()
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "instance: n=%d m=%d dealer=%d receiver=%d knowledge=%s\n",
		g.NumNodes(), g.NumEdges(), *dealer, *receiver, level)
	fmt.Fprintf(out, "structure: %s (%d maximal sets)\n", in.Z, in.Z.NumMaximal())

	if rmt.SolvablePKA(in) {
		fmt.Fprintln(out, "RMT (partial knowledge): SOLVABLE — no RMT-cut; RMT-PKA succeeds (Thm 5)")
	} else {
		cut, _ := rmt.FindRMTCut(in)
		if err := rmt.VerifyRMTCut(in, cut); err != nil {
			return fmt.Errorf("internal error: found witness fails verification: %w", err)
		}
		fmt.Fprintf(out, "RMT (partial knowledge): UNSOLVABLE — verified witness %v (Thm 3)\n", cut)
	}

	if level == gen.AdHoc {
		if rmt.SolvableZCPA(in) {
			fmt.Fprintln(out, "RMT (ad hoc / Z-CPA):    SOLVABLE — no RMT Z-pp cut (Thm 7)")
		} else {
			cut, _ := rmt.FindZppCut(in)
			if err := rmt.VerifyZppCut(in, cut); err != nil {
				return fmt.Errorf("internal error: found witness fails verification: %w", err)
			}
			fmt.Fprintf(out, "RMT (ad hoc / Z-CPA):    UNSOLVABLE — verified witness %v (Thm 8)\n", cut)
		}
	}

	if z1, z2, found := rmt.FindPairCut(in); found {
		fmt.Fprintf(out, "full-knowledge pair cut: %v ∪ %v — unsolvable even with γ = G\n", z1, z2)
	} else {
		fmt.Fprintln(out, "full-knowledge pair cut: none — solvable with full topology knowledge")
	}

	if k, ok := rmt.MinimalKnowledgeRadius(g, z, *dealer, *receiver); ok {
		fmt.Fprintf(out, "minimal knowledge radius: %d (graph diameter %d)\n", k, g.Diameter())
	} else {
		fmt.Fprintln(out, "minimal knowledge radius: none — unsolvable at every radius")
	}

	if *design {
		feasible := rmt.FeasibleReceivers(g, z, level.View(g), *dealer)
		fmt.Fprintf(out, "feasible receivers from %d at %s knowledge: %v\n", *dealer, level, feasible)
	}
	return nil
}
