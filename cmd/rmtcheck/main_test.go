package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunChimera(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 0-2 0-3 1-4 1-5 2-4 3-5 4-6 5-6",
		"-structure", "1;2;3",
		"-dealer", "0", "-receiver", "6",
		"-knowledge", "adhoc", "-design",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"UNSOLVABLE", "RMTCut", "minimal knowledge radius: 2",
		"feasible receivers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSolvable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 0-2 0-3 1-4 2-4 3-4",
		"-structure", "1;2;3",
		"-receiver", "4",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SOLVABLE — no RMT-cut") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing graph
		{"-graph", "0-1"},                 // missing receiver
		{"-graph", "x", "-receiver", "1"}, // bad graph
		{"-graph", "0-1", "-receiver", "1", "-structure", "zz"},
		{"-graph", "0-1", "-receiver", "1", "-knowledge", "psychic"},
		{"-graph", "0-1", "-receiver", "9"}, // receiver not a node
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: no error for %v", i, args)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/in.rmt"
	spec := "graph: 0-1 0-2 1-3 2-3\nstructure: 1;2\nreceiver: 3\n"
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "UNSOLVABLE") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunFromMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", "/nonexistent/x.rmt"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}
