package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunChimera(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 0-2 0-3 1-4 1-5 2-4 3-5 4-6 5-6",
		"-structure", "1;2;3",
		"-dealer", "0", "-receiver", "6",
		"-knowledge", "adhoc", "-design",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"UNSOLVABLE", "RMTCut", "minimal knowledge radius: 2",
		"feasible receivers",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSolvable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 0-2 0-3 1-4 2-4 3-4",
		"-structure", "1;2;3",
		"-receiver", "4",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "SOLVABLE — no RMT-cut") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},                                // missing graph
		{"-graph", "0-1"},                 // missing receiver
		{"-graph", "x", "-receiver", "1"}, // bad graph
		{"-graph", "0-1", "-receiver", "1", "-structure", "zz"},
		{"-graph", "0-1", "-receiver", "1", "-knowledge", "psychic"},
		{"-graph", "0-1", "-receiver", "9"}, // receiver not a node
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: no error for %v", i, args)
		}
	}
}

func TestRunFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/in.rmt"
	spec := "graph: 0-1 0-2 1-3 2-3\nstructure: 1;2\nreceiver: 3\n"
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "UNSOLVABLE") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunAdHocSolvableReportsAllConditions(t *testing.T) {
	// On a solvable ad hoc instance every characterization section must
	// agree: no RMT-cut, no Z-pp cut, no pair cut, radius 0 or more.
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 0-2 0-3 1-4 2-4 3-4",
		"-structure", "1;2;3",
		"-receiver", "4",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"RMT (partial knowledge): SOLVABLE",
		"RMT (ad hoc / Z-CPA):    SOLVABLE",
		"full-knowledge pair cut: none",
		"minimal knowledge radius:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFullKnowledgeSkipsZCPASection(t *testing.T) {
	// The Z-CPA condition is an ad hoc statement; at -knowledge full the
	// section must not appear, and the weak diamond's pair cut must.
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 0-2 1-3 2-3",
		"-structure", "1;2",
		"-receiver", "3",
		"-knowledge", "full",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "Z-CPA") {
		t.Errorf("Z-CPA section shown at full knowledge:\n%s", out)
	}
	for _, want := range []string{
		"UNSOLVABLE",
		"full-knowledge pair cut: {1}",
		"minimal knowledge radius: none",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunFromSpecFileWithKnowledge(t *testing.T) {
	// A spec file carries its own knowledge level; the chimera instance is
	// solvable at the radius-2 level the file records.
	dir := t.TempDir()
	path := dir + "/chimera.rmt"
	spec := "# rmt instance v1\n" +
		"graph: 0-1 0-2 0-3 1-4 2-4 1-5 3-5 4-6 5-6\n" +
		"structure: 1;2;3\nknowledge: radius2\ndealer: 0\nreceiver: 6\n"
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "knowledge=radius2") || !strings.Contains(out, "RMT (partial knowledge): SOLVABLE") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunFromMissingFile(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-file", "/nonexistent/x.rmt"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}
