package main

import (
	"errors"
	"os"
	"regexp"
	"strings"
	"testing"

	"rmt"
	"rmt/internal/wire"
)

// TestMain mirrors main(): wire-engine coordinators re-exec this test binary
// as node children, which must divert into the node loop before the testing
// framework parses flags.
func TestMain(m *testing.M) {
	if wire.IsNode() {
		os.Exit(wire.NodeMain())
	}
	os.Exit(m.Run())
}

const tripleGraph = "0-1 0-2 0-3 1-4 2-4 3-4"

// k5Graph is the complete graph on five nodes — mbrb counts processes, not
// paths, and rejects sparse networks.
const k5Graph = "0-1 0-2 0-3 0-4 1-2 1-3 1-4 2-3 2-4 3-4"

// fixtureFor picks a (graph, structure) pair the protocol accepts: the
// triple-path relay graph for the path-based RMT protocols, K5 for mbrb.
// smt needs honest share paths, so its structure leaves relay 3 out of the
// adversary's reach while keeping the suite's -corrupt 2 admissible.
func fixtureFor(proto string) (graph, structure string) {
	switch proto {
	case rmt.ProtocolMBRB:
		return k5Graph, "1;2;3"
	case rmt.ProtocolSMT:
		return tripleGraph, "1;2"
	}
	return tripleGraph, "1;2;3"
}

func TestRunHonest(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3",
		"-receiver", "4", "-protocol", "pka", "-value", "hello",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"hello" — CORRECT`) {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunEveryProtocolAndAttack(t *testing.T) {
	for _, proto := range rmt.Protocols() {
		for _, attack := range rmt.AttackStrategies() {
			graph, structure := fixtureFor(proto)
			var sb strings.Builder
			err := run([]string{
				"-graph", graph, "-structure", structure,
				"-receiver", "4", "-protocol", proto, "-value", "v",
				"-knowledge", "full",
				"-corrupt", "2", "-attack", attack, "-rounds",
			}, &sb)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, attack, err)
			}
			if strings.Contains(sb.String(), "WRONG") {
				t.Fatalf("%s/%s: safety violation:\n%s", proto, attack, sb.String())
			}
		}
	}
}

func TestRunGoroutineEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-protocol", "zcpa", "-engine", "goroutine",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CORRECT") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunSMTListening(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1", "-receiver", "4",
		"-protocol", "smt", "-value", "launch code", "-listen", "2",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"launch code" — CORRECT`) {
		t.Fatalf("output:\n%s", sb.String())
	}
}

// TestRunCapsRejectionIsUsageError: a protocol refusing an instance or
// listening pairing outright is a configuration mistake, reported as a
// one-line usage error (exit 2) — not a run failure and certainly not a
// panic. The smt pairing below has every relay corruptible-or-listenable;
// the mbrb instance is an incomplete network.
func TestRunCapsRejectionIsUsageError(t *testing.T) {
	cases := [][]string{
		{"-graph", tripleGraph, "-structure", "1", "-receiver", "4",
			"-protocol", "smt", "-listen", "2,3"},
		{"-graph", tripleGraph, "-structure", "1", "-receiver", "4",
			"-protocol", "mbrb"},
	}
	for i, args := range cases {
		var sb strings.Builder
		err := run(args, &sb)
		if err == nil {
			t.Fatalf("case %d: infeasible pairing accepted", i)
		}
		if !rmt.IsCapsError(err) {
			t.Fatalf("case %d: not a caps error: %v", i, err)
		}
		if errors.As(err, &runError{}) {
			t.Fatalf("case %d: caps rejection classified as run failure (exit 1): %v", i, err)
		}
		if strings.Contains(err.Error(), "\n") {
			t.Fatalf("case %d: usage error is not one line: %q", i, err)
		}
	}
}

func TestRunRejectsInadmissibleCorruption(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1", "-receiver", "4",
		"-corrupt", "2,3",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "not admissible") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-graph", tripleGraph, "-receiver", "4", "-protocol", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-engine", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-corrupt", "1", "-attack", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-listen", "not-a-structure"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestRunTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "zcpa",
		"-value", "hi", "-trace",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "round 1") || !strings.Contains(out, "0 → 1  v:hi") {
		t.Fatalf("trace missing:\n%s", out)
	}
}

func TestRunTracePPA(t *testing.T) {
	// The unified runtime records transcripts for every protocol — PPA
	// included, which the pre-registry CLI had to reject.
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "ppa",
		"-knowledge", "full", "-value", "hi", "-trace",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round 1") {
		t.Fatalf("trace missing:\n%s", sb.String())
	}
}

func TestRunJSONL(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "zcpa",
		"-value", "hi", "-jsonl", "-",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ev":"run"`, `"ev":"send"`, `"ev":"decide"`, `"ev":"run-end"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("jsonl output missing %s:\n%s", want, out)
		}
	}
}

func TestRunAsyncEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3", "-receiver", "4",
		"-protocol", "zcpa", "-value", "v",
		"-engine", "async", "-sched", "random", "-seed", "7",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"engine=async sched=random seed=7", "CORRECT", "delayed="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAsyncDefaultsToSyncSchedule(t *testing.T) {
	// -engine async with no -sched runs the zero-fault schedule: nothing is
	// delayed and the run matches the synchronous engines.
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3", "-receiver", "4",
		"-protocol", "zcpa", "-value", "v", "-engine", "async",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sched=sync") || !strings.Contains(out, "delayed=0") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunSchedRequiresAsyncEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-sched", "random",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "requires -engine async") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-engine", "async", "-sched", "bogus",
	}, &sb); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestRunAsyncSeededJSONLIsReproducible(t *testing.T) {
	args := []string{
		"-graph", tripleGraph, "-structure", "1;2;3", "-receiver", "4",
		"-protocol", "pka", "-value", "v",
		"-engine", "async", "-sched", "partition", "-seed", "3",
		"-jsonl", "-",
	}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same (sched, seed), different output")
	}
	if !strings.Contains(a.String(), `"engine":"async"`) {
		t.Fatalf("jsonl missing async run header:\n%.300s", a.String())
	}
}

// TestRunWireGoldenAgreement is the CLI-level acceptance check for the wire
// engine: for every registry protocol, -engine wire (real TCP, one OS
// process per player) must emit the same JSON event stream as -engine
// lockstep, up to the engine name in the run header.
func TestRunWireGoldenAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	engineField := regexp.MustCompile(`"engine":"[a-z]+"`)
	for _, proto := range rmt.Protocols() {
		t.Run(proto, func(t *testing.T) {
			graph, structure := fixtureFor(proto)
			outputs := map[string]string{}
			for _, eng := range []string{"lockstep", "wire"} {
				var sb strings.Builder
				err := run([]string{
					"-graph", graph, "-structure", structure,
					"-receiver", "4", "-protocol", proto, "-value", "v",
					"-knowledge", "full", "-corrupt", "2",
					"-engine", eng, "-jsonl", "-",
				}, &sb)
				if err != nil {
					t.Fatalf("%s: %v", eng, err)
				}
				normalized := engineField.ReplaceAllString(sb.String(), `"engine":"*"`)
				outputs[eng] = strings.ReplaceAll(normalized, "engine="+eng, "engine=*")
			}
			if outputs["lockstep"] != outputs["wire"] {
				t.Errorf("wire run diverges from lockstep:\nlockstep:\n%s\nwire:\n%s",
					outputs["lockstep"], outputs["wire"])
			}
		})
	}
}

func TestRunMessageAdversary(t *testing.T) {
	// Every stock policy at d=1 on the K6 MBRB fixture: one Byzantine
	// player plus one suppressed copy per broadcast is exactly what
	// n=6 > 3t+2d provisions for, so the receiver still decides.
	const k6 = "0-1 0-2 0-3 0-4 0-5 1-2 1-3 1-4 1-5 2-3 2-4 2-5 3-4 3-5 4-5"
	for _, policy := range rmt.MessageAdversaryNames() {
		var sb strings.Builder
		err := run([]string{
			"-graph", k6, "-structure", "1;2;3;4", "-receiver", "5",
			"-protocol", "mbrb", "-value", "v", "-corrupt", "1",
			"-ma", policy, "-mabudget", "1", "-maseed", "7",
		}, &sb)
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		out := sb.String()
		for _, want := range []string{"ma=" + policy + "(d=1)", "suppressed="} {
			if !strings.Contains(out, want) {
				t.Fatalf("%s: output missing %q:\n%s", policy, want, out)
			}
		}
		// Safety holds under every policy; liveness at the receiver is only
		// guaranteed for the deterministic targeted policy — the seeded ones
		// may pick the receiver as one of the d starved players.
		if strings.Contains(out, "WRONG") {
			t.Fatalf("%s: safety violation:\n%s", policy, out)
		}
		if policy == "targeted" && !strings.Contains(out, `"v" — CORRECT`) {
			t.Fatalf("targeted: receiver did not decide:\n%s", out)
		}
	}
}

func TestRunMessageAdversaryErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-graph", tripleGraph, "-structure", "", "-receiver", "4", "-ma", "bogus"},
		{"-graph", tripleGraph, "-structure", "", "-receiver", "4", "-ma", "random", "-mabudget", "-1"},
		{"-graph", tripleGraph, "-structure", "", "-receiver", "4", "-mabudget", "2"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("%v: no error", args)
		}
	}
}

func TestRunSimFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/in.rmt"
	spec := "graph: " + tripleGraph + "\nstructure: 1;2;3\nreceiver: 4\n"
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-protocol", "zcpa", "-value", "v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CORRECT") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
