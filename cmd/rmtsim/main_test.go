package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"rmt"
	"rmt/internal/wire"
)

// TestMain mirrors main(): wire-engine coordinators re-exec this test binary
// as node children, which must divert into the node loop before the testing
// framework parses flags.
func TestMain(m *testing.M) {
	if wire.IsNode() {
		os.Exit(wire.NodeMain())
	}
	os.Exit(m.Run())
}

const tripleGraph = "0-1 0-2 0-3 1-4 2-4 3-4"

func TestRunHonest(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3",
		"-receiver", "4", "-protocol", "pka", "-value", "hello",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"hello" — CORRECT`) {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunEveryProtocolAndAttack(t *testing.T) {
	for _, proto := range rmt.Protocols() {
		for _, attack := range rmt.AttackStrategies() {
			var sb strings.Builder
			err := run([]string{
				"-graph", tripleGraph, "-structure", "1;2;3",
				"-receiver", "4", "-protocol", proto, "-value", "v",
				"-knowledge", "full",
				"-corrupt", "2", "-attack", attack, "-rounds",
			}, &sb)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, attack, err)
			}
			if strings.Contains(sb.String(), "WRONG") {
				t.Fatalf("%s/%s: safety violation:\n%s", proto, attack, sb.String())
			}
		}
	}
}

func TestRunGoroutineEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-protocol", "zcpa", "-engine", "goroutine",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CORRECT") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunRejectsInadmissibleCorruption(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1", "-receiver", "4",
		"-corrupt", "2,3",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "not admissible") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-graph", tripleGraph, "-receiver", "4", "-protocol", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-engine", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-corrupt", "1", "-attack", "nope"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestRunTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "zcpa",
		"-value", "hi", "-trace",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "round 1") || !strings.Contains(out, "0 → 1  v:hi") {
		t.Fatalf("trace missing:\n%s", out)
	}
}

func TestRunTracePPA(t *testing.T) {
	// The unified runtime records transcripts for every protocol — PPA
	// included, which the pre-registry CLI had to reject.
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "ppa",
		"-knowledge", "full", "-value", "hi", "-trace",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round 1") {
		t.Fatalf("trace missing:\n%s", sb.String())
	}
}

func TestRunJSONL(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "zcpa",
		"-value", "hi", "-jsonl", "-",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ev":"run"`, `"ev":"send"`, `"ev":"decide"`, `"ev":"run-end"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("jsonl output missing %s:\n%s", want, out)
		}
	}
}

func TestRunAsyncEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3", "-receiver", "4",
		"-protocol", "zcpa", "-value", "v",
		"-engine", "async", "-sched", "random", "-seed", "7",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"engine=async sched=random seed=7", "CORRECT", "delayed="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunAsyncDefaultsToSyncSchedule(t *testing.T) {
	// -engine async with no -sched runs the zero-fault schedule: nothing is
	// delayed and the run matches the synchronous engines.
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3", "-receiver", "4",
		"-protocol", "zcpa", "-value", "v", "-engine", "async",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "sched=sync") || !strings.Contains(out, "delayed=0") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestRunSchedRequiresAsyncEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-sched", "random",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "requires -engine async") {
		t.Fatalf("err = %v", err)
	}
	if err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-engine", "async", "-sched", "bogus",
	}, &sb); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestRunAsyncSeededJSONLIsReproducible(t *testing.T) {
	args := []string{
		"-graph", tripleGraph, "-structure", "1;2;3", "-receiver", "4",
		"-protocol", "pka", "-value", "v",
		"-engine", "async", "-sched", "partition", "-seed", "3",
		"-jsonl", "-",
	}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same (sched, seed), different output")
	}
	if !strings.Contains(a.String(), `"engine":"async"`) {
		t.Fatalf("jsonl missing async run header:\n%.300s", a.String())
	}
}

// TestRunWireGoldenAgreement is the CLI-level acceptance check for the wire
// engine: for every registry protocol, -engine wire (real TCP, one OS
// process per player) must emit the same JSON event stream as -engine
// lockstep, up to the engine name in the run header.
func TestRunWireGoldenAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	engineField := regexp.MustCompile(`"engine":"[a-z]+"`)
	for _, proto := range rmt.Protocols() {
		t.Run(proto, func(t *testing.T) {
			outputs := map[string]string{}
			for _, eng := range []string{"lockstep", "wire"} {
				var sb strings.Builder
				err := run([]string{
					"-graph", tripleGraph, "-structure", "1;2;3",
					"-receiver", "4", "-protocol", proto, "-value", "v",
					"-knowledge", "full", "-corrupt", "2",
					"-engine", eng, "-jsonl", "-",
				}, &sb)
				if err != nil {
					t.Fatalf("%s: %v", eng, err)
				}
				normalized := engineField.ReplaceAllString(sb.String(), `"engine":"*"`)
				outputs[eng] = strings.ReplaceAll(normalized, "engine="+eng, "engine=*")
			}
			if outputs["lockstep"] != outputs["wire"] {
				t.Errorf("wire run diverges from lockstep:\nlockstep:\n%s\nwire:\n%s",
					outputs["lockstep"], outputs["wire"])
			}
		})
	}
}

func TestRunSimFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/in.rmt"
	spec := "graph: " + tripleGraph + "\nstructure: 1;2;3\nreceiver: 4\n"
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-protocol", "zcpa", "-value", "v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CORRECT") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
