package main

import (
	"os"
	"strings"
	"testing"

	"rmt"
)

const tripleGraph = "0-1 0-2 0-3 1-4 2-4 3-4"

func TestRunHonest(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1;2;3",
		"-receiver", "4", "-protocol", "pka", "-value", "hello",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"hello" — CORRECT`) {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunEveryProtocolAndAttack(t *testing.T) {
	for _, proto := range rmt.Protocols() {
		for _, attack := range rmt.AttackStrategies() {
			var sb strings.Builder
			err := run([]string{
				"-graph", tripleGraph, "-structure", "1;2;3",
				"-receiver", "4", "-protocol", proto, "-value", "v",
				"-knowledge", "full",
				"-corrupt", "2", "-attack", attack, "-rounds",
			}, &sb)
			if err != nil {
				t.Fatalf("%s/%s: %v", proto, attack, err)
			}
			if strings.Contains(sb.String(), "WRONG") {
				t.Fatalf("%s/%s: safety violation:\n%s", proto, attack, sb.String())
			}
		}
	}
}

func TestRunGoroutineEngine(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "", "-receiver", "4",
		"-protocol", "zcpa", "-engine", "goroutine",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CORRECT") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunRejectsInadmissibleCorruption(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", tripleGraph, "-structure", "1", "-receiver", "4",
		"-corrupt", "2,3",
	}, &sb)
	if err == nil || !strings.Contains(err.Error(), "not admissible") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"-graph", tripleGraph, "-receiver", "4", "-protocol", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-engine", "nope"},
		{"-graph", tripleGraph, "-receiver", "4", "-corrupt", "1", "-attack", "nope"},
	}
	for i, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestRunTrace(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "zcpa",
		"-value", "hi", "-trace",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "round 1") || !strings.Contains(out, "0 → 1  v:hi") {
		t.Fatalf("trace missing:\n%s", out)
	}
}

func TestRunTracePPA(t *testing.T) {
	// The unified runtime records transcripts for every protocol — PPA
	// included, which the pre-registry CLI had to reject.
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "ppa",
		"-knowledge", "full", "-value", "hi", "-trace",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "round 1") {
		t.Fatalf("trace missing:\n%s", sb.String())
	}
}

func TestRunJSONL(t *testing.T) {
	var sb strings.Builder
	err := run([]string{
		"-graph", "0-1 1-2", "-receiver", "2", "-protocol", "zcpa",
		"-value", "hi", "-jsonl", "-",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"ev":"run"`, `"ev":"send"`, `"ev":"decide"`, `"ev":"run-end"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("jsonl output missing %s:\n%s", want, out)
		}
	}
}

func TestRunSimFromFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/in.rmt"
	spec := "graph: " + tripleGraph + "\nstructure: 1;2;3\nreceiver: 4\n"
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-file", path, "-protocol", "zcpa", "-value", "v"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CORRECT") {
		t.Fatalf("output:\n%s", sb.String())
	}
}
