// Command rmtsim runs one protocol execution on one instance and reports
// the receiver's decision with full complexity metrics — the smallest way
// to watch any registered protocol (RMT-PKA, 𝒵-CPA, PPA, broadcast) at
// work, including under attack.
//
// Usage:
//
//	rmtsim -graph "0-1 0-2 0-3 1-4 2-4 3-4" -structure "1;2;3" \
//	       -dealer 0 -receiver 4 -protocol pka -value "attack at dawn" \
//	       -corrupt 2 -attack value-flip
//
// A message adversary can suppress up to -mabudget copies of every
// broadcast on top of the node corruption (mbrb provisions its quorums for
// the budget):
//
//	rmtsim -graph "0-1 0-2 0-3 0-4 0-5 1-2 1-3 1-4 1-5 2-3 2-4 2-5 3-4 3-5 4-5" \
//	       -structure "1;2;3;4" -dealer 0 -receiver 5 -protocol mbrb \
//	       -corrupt 1 -ma targeted -mabudget 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rmt"
	"rmt/internal/cliutil"
	"rmt/internal/wire" // registers the real-socket "wire" engine
)

func main() {
	// A wire-engine coordinator re-execs this binary once per player; such
	// children divert into the node main loop before any flag parsing.
	if wire.IsNode() {
		os.Exit(wire.NodeMain())
	}
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtsim:", err)
		// Usage errors (bad flags, bad instance, unknown names) exit 2;
		// failures of a validly-specified run exit 1.
		if errors.As(err, &runError{}) {
			os.Exit(1)
		}
		os.Exit(2)
	}
}

// runError marks errors that occur after validation, while executing the
// requested protocol run.
type runError struct{ err error }

func (e runError) Error() string { return e.err.Error() }
func (e runError) Unwrap() error { return e.err }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtsim", flag.ContinueOnError)
	var (
		file      = fs.String("file", "", "instance spec file (see rmtgen -spec); overrides the other instance flags")
		graphStr  = fs.String("graph", "", "edge list (required unless -file)")
		structStr = fs.String("structure", "", "adversary structure, e.g. \"1,2;3\"")
		dealer    = fs.Int("dealer", 0, "dealer node ID")
		receiver  = fs.Int("receiver", -1, "receiver node ID (required unless -file)")
		knowledge = fs.String("knowledge", "adhoc", "adhoc|radius1|radius2|radius3|full")
		protocol  = fs.String("protocol", rmt.ProtocolPKA, "protocol name: "+strings.Join(rmt.Protocols(), "|"))
		value     = fs.String("value", "1", "dealer value x_D")
		listen    = fs.String("listen", "", "listening structure ℒ for smt, e.g. \"2;3\" (empty = no listening)")
		corrupt   = fs.String("corrupt", "", "corrupted nodes, e.g. \"2,3\" (must be admissible)")
		attack    = fs.String("attack", "silent", "attack strategy: "+strings.Join(rmt.AttackStrategies(), "|"))
		engine    = fs.String("engine", "lockstep", "engine name: "+strings.Join(rmt.Engines(), "|"))
		sched     = fs.String("sched", "sync", "async schedule: "+strings.Join(rmt.SchedulerNames(), "|"))
		seed      = fs.Int64("seed", 1, "schedule seed (async engine)")
		ma        = fs.String("ma", "", "message-adversary policy (none if empty): "+strings.Join(rmt.MessageAdversaryNames(), "|"))
		maBudget  = fs.Int("mabudget", 0, "copies the message adversary may suppress per broadcast (requires -ma)")
		maSeed    = fs.Int64("maseed", 1, "message-adversary seed (random/eclipse policies)")
		node      = fs.Bool("node", false, "internal: wire-engine node child (set by the coordinator)")
		perRound  = fs.Bool("rounds", false, "print per-round message counts")
		trace     = fs.Bool("trace", false, "print every delivered message, round by round")
		jsonl     = fs.String("jsonl", "", "stream run events as JSON lines to this file (\"-\" = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *node {
		return fmt.Errorf("-node is internal: it marks a child process spawned by the wire engine and needs the coordinator's environment")
	}
	var spec cliutil.InstanceSpec
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		spec, err = cliutil.ParseInstanceSpec(string(data))
		if err != nil {
			return err
		}
	} else {
		if *graphStr == "" || *receiver < 0 {
			return fmt.Errorf("-graph and -receiver (or -file) are required")
		}
		g, err := rmt.ParseEdgeList(*graphStr)
		if err != nil {
			return err
		}
		z, err := cliutil.ParseStructure(*structStr)
		if err != nil {
			return err
		}
		level, err := cliutil.ParseKnowledge(*knowledge)
		if err != nil {
			return err
		}
		spec = cliutil.InstanceSpec{Graph: g, Z: z, Knowledge: level, Dealer: *dealer, Receiver: *receiver}
	}
	*receiver = spec.Receiver
	in, err := spec.Instance()
	if err != nil {
		return err
	}
	t, err := cliutil.ParseNodeSet(*corrupt)
	if err != nil {
		return err
	}
	if !in.Admissible(t) {
		return fmt.Errorf("corruption set %v is not admissible under %v", t, in.Z)
	}
	eng, err := rmt.ParseEngine(*engine)
	if err != nil {
		return err
	}
	var scheduler rmt.Scheduler
	if eng == rmt.Async {
		if scheduler, err = rmt.NewScheduler(*sched, *seed); err != nil {
			return err
		}
	} else if *sched != "sync" {
		return fmt.Errorf("-sched %q requires -engine async", *sched)
	}

	var corruptProcs map[int]rmt.Process
	if !t.IsEmpty() {
		corruptProcs, err = rmt.NewAttack(*attack, in, t, "forged-by-"+rmt.Value(*attack))
		if err != nil {
			return err
		}
	}

	listenZ, err := cliutil.ParseStructure(*listen)
	if err != nil {
		return fmt.Errorf("-listen: %w", err)
	}

	opts := rmt.RunOptions{Engine: eng, Scheduler: scheduler, RecordTranscript: *trace,
		Listen: listenZ, Seed: *seed}
	var madv rmt.MessageAdversary
	if *ma != "" {
		if madv, err = rmt.NewMessageAdversary(*ma, *maBudget, *maSeed); err != nil {
			return err
		}
		opts.MsgAdversary, opts.MABudget = madv, *maBudget
	} else if *maBudget != 0 {
		return fmt.Errorf("-mabudget %d requires -ma", *maBudget)
	}
	// The blueprint mirrors the flags as pure data; in-process engines
	// ignore it, the wire engine rebuilds the run from it in each child.
	opts.Blueprint = &rmt.Blueprint{
		Instance: spec.Format(),
		Protocol: *protocol,
		Value:    *value,
		Corrupt:  t.Members(),
		Attack:   *attack,
		Forged:   "forged-by-" + *attack,
		Listen:   cliutil.FormatStructure(listenZ),
		Seed:     *seed,
	}
	var jt *rmt.JSONLTracer
	if *jsonl != "" {
		w := out
		if *jsonl != "-" {
			f, err := os.Create(*jsonl)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		jt = rmt.NewJSONLTracer(w)
		opts.Tracers = []rmt.Tracer{jt}
	}
	res, err := rmt.RunProtocol(*protocol, in, rmt.Value(*value), corruptProcs, opts)
	if err != nil {
		// A capability rejection — the protocol refusing this instance or
		// listening-structure pairing outright — is a usage problem with the
		// requested configuration, not a failure of a valid run: exit 2.
		if rmt.IsCapsError(err) {
			return err
		}
		return runError{err}
	}
	if jt != nil {
		if err := jt.Err(); err != nil {
			return runError{fmt.Errorf("jsonl: %w", err)}
		}
	}
	if *trace && res.Transcript != nil {
		for r := 1; r <= res.Transcript.Rounds(); r++ {
			deliveries := res.Transcript.Deliveries(r)
			fmt.Fprintf(out, "round %d (%d deliveries):\n", r, len(deliveries))
			for _, m := range deliveries {
				fmt.Fprintf(out, "  %d → %d  %s\n", m.From, m.To, m.Payload.Key())
			}
		}
	}

	engineDesc := eng.Name()
	if scheduler != nil {
		engineDesc = fmt.Sprintf("%s sched=%s seed=%d", eng.Name(), scheduler.Name(), *seed)
	}
	if madv != nil {
		engineDesc = fmt.Sprintf("%s ma=%s(d=%d)", engineDesc, *ma, *maBudget)
	}
	fmt.Fprintf(out, "protocol=%s engine=%s corrupt=%v attack=%s\n", *protocol, engineDesc, t, *attack)
	if got, ok := res.DecisionOf(*receiver); ok {
		status := "CORRECT"
		if got != rmt.Value(*value) {
			status = "WRONG (safety violation!)"
		}
		fmt.Fprintf(out, "receiver decision: %q — %s\n", got, status)
	} else {
		fmt.Fprintln(out, "receiver decision: ⊥ (undecided)")
	}
	fmt.Fprintf(out, "rounds=%d messages=%d dropped=%d bits=%d maxInbox=%d\n",
		res.Rounds, res.Metrics.MessagesSent, res.Metrics.MessagesDropped,
		res.Metrics.BitsSent, res.Metrics.MaxInboxPerPlayer)
	if eng == rmt.Async {
		fmt.Fprintf(out, "delayed=%d\n", res.Metrics.MessagesDelayed)
	}
	if madv != nil {
		fmt.Fprintf(out, "suppressed=%d\n", madv.Suppressed())
	}
	if *perRound {
		for r, m := range res.Metrics.MessagesPerRound {
			fmt.Fprintf(out, "  round %2d: %d messages\n", r, m)
		}
	}
	return nil
}
