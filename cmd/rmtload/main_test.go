package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeRun exercises the full driver at CI scale against an in-process
// server: all requests 200, hit ratio above the bar, byte identity holds.
func TestSmokeRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke"}, &out); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"load check PASS", "byte-identity across worker counts PASS", "cache hit ratio"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-concurrency", "0"}, &out); err == nil {
		t.Fatal("concurrency 0 should error")
	}
}
