package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestSmokeRun exercises the full driver at CI scale against an in-process
// server: all requests 200, hit ratio above the bar, byte identity holds.
func TestSmokeRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke"}, &out); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"load check PASS", "byte-identity across worker counts PASS", "cache hit ratio"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRejectsBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-concurrency", "0"}, &out); err == nil {
		t.Fatal("concurrency 0 should error")
	}
	if err := run([]string{"-fleet", "-addr", "localhost:1"}, &out); err == nil {
		t.Fatal("-fleet with -addr should error")
	}
}

// TestFleetSmokeRun exercises the fleet driver at CI scale: 3 in-process
// shards behind a router, zero drops, cross-shard peer cache hits, and
// byte-identical bodies whichever shard answers.
func TestFleetSmokeRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-fleet", "-smoke"}, &out); err != nil {
		t.Fatalf("fleet smoke failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"load check PASS", "fleet byte-identity across shards PASS", "cross-shard peer cache hits", "fleet check PASS"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
