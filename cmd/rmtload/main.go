// Command rmtload drives load against an rmtd daemon and checks the
// acceptance bar of the query service:
//
//   - it sustains -concurrency in-flight requests with zero dropped
//     connections (transport-level failures) and zero 5xx replies;
//   - the canonical-instance cache absorbs the repetition in the workload
//     (final rmtd_cache_hit_ratio > 0.5);
//   - equal requests get byte-identical JSON bodies regardless of the
//     daemon's worker count (checked against two in-process servers with
//     1 and 8 workers).
//
// With -addr it targets a running daemon; without it, it boots an
// in-process server so `make loadtest` needs no orchestration. -smoke runs
// the same checks at CI scale (one uncached plus one cached request).
//
// -watch runs the watch-API smoke instead: it subscribes to POST /v1/watch,
// pushes a scripted delta chain whose feasibility flips twice, and asserts
// the stream carries exactly the verdict-change events.
//
// -fleet boots three in-process shards behind a consistent-hash router
// (the rmtd fleet topology) and adds the fleet acceptance bar: the router
// spreads distinct instances across shards, direct hits on non-owning
// shards are served out of the owning peer's cache (cross-shard peer hits
// > 0), and every shard serves bytes identical to the router's.
//
// Usage:
//
//	rmtload                        # in-process, 200 in flight, 4000 requests
//	rmtload -addr localhost:8080   # against a running daemon
//	rmtload -smoke                 # CI-sized smoke with the same assertions
//	rmtload -fleet -smoke          # CI-sized fleet smoke (3 shards + router)
//	rmtload -watch                 # watch-API smoke (verdict-change stream)
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rmt/internal/server"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmtload:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmtload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "", "daemon address (empty = boot an in-process server)")
		concurrency = fs.Int("concurrency", 200, "concurrent in-flight requests")
		requests    = fs.Int("requests", 4000, "total requests to issue")
		smoke       = fs.Bool("smoke", false, "CI-sized smoke run (overrides -concurrency/-requests)")
		fleet       = fs.Bool("fleet", false, "boot a 3-shard fleet behind a router and add the cross-shard cache checks")
		watch       = fs.Bool("watch", false, "watch-API smoke: subscribe, push a scripted delta chain, assert the exact verdict-change events")
	)
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *smoke {
		*concurrency, *requests = 4, 3*len(workload())
	}
	if *concurrency < 1 || *requests < *concurrency {
		return fmt.Errorf("need requests ≥ concurrency ≥ 1 (got %d, %d)", *requests, *concurrency)
	}
	if *fleet {
		if *addr != "" {
			return fmt.Errorf("-fleet boots its own in-process shards; it cannot target -addr")
		}
		return runFleet(out, *concurrency, *requests)
	}

	base := "http://" + *addr
	if *addr == "" {
		stop, inproc, err := bootInProcess(*concurrency)
		if err != nil {
			return err
		}
		defer stop()
		base = inproc
	}

	if *watch {
		return runWatchSmoke(out, base)
	}
	if err := driveLoad(out, base, []string{base}, *concurrency, *requests); err != nil {
		return err
	}
	return checkByteIdentity(out)
}

// bootInProcess starts a quiet rmtd server on an ephemeral port with a
// queue deep enough that the load itself never trips backpressure.
func bootInProcess(concurrency int) (stop func(), base string, err error) {
	srv := server.New(server.Options{QueueDepth: 2 * concurrency, LogWriter: io.Discard})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	httpServer := &http.Server{Handler: srv}
	go httpServer.Serve(ln)
	stop = func() {
		httpServer.Close()
		srv.Close()
	}
	return stop, "http://" + ln.Addr().String(), nil
}

type workItem struct {
	path string
	body string
}

// workload is the request mix: a handful of distinct feasibility and run
// queries over small instances. Issuing `requests` draws round-robin from
// it makes the expected cache hit ratio (requests - distinct) / requests,
// far above the 0.5 bar for any realistic request count.
func workload() []workItem {
	items := []workItem{
		{"/v1/feasibility", `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4}`},
		{"/v1/feasibility", `{"graph":"0-1 1-2","structure":"1","dealer":0,"receiver":2}`},
		{"/v1/feasibility", `{"graph":"0-1 0-2 1-3 2-3","structure":"1;2","dealer":0,"receiver":3}`},
		{"/v1/feasibility", `{"graph":"0-1 0-2 1-3 2-3","structure":"1,2","dealer":0,"receiver":3}`},
		{"/v1/run", `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4,"protocol":"pka"}`},
		{"/v1/run", `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4,"protocol":"zcpa","corrupt":[2],"attack":"value-flip"}`},
		{"/v1/run", `{"graph":"0-1 0-2 1-3 2-3","structure":"1;2","dealer":0,"receiver":3,"engine":"async","schedule":"random","seed":11,"trials":3}`},
		{"/v1/run", `{"graph":"0-1 0-2 1-3 2-3","structure":"1;2","dealer":0,"receiver":3,"engine":"async","schedule":"lifo","seed":5}`},
	}
	return items
}

// driveLoad issues the workload against base and enforces the acceptance
// bar. metricsBases lists the servers whose caches absorb the load — just
// base for a standalone daemon, every shard for a fleet (the router itself
// holds no cache); the hit-ratio bar applies to their aggregate counters.
func driveLoad(out io.Writer, base string, metricsBases []string, concurrency, requests int) error {
	client := &http.Client{
		Transport: &http.Transport{MaxIdleConns: concurrency, MaxIdleConnsPerHost: concurrency},
		Timeout:   60 * time.Second,
	}
	items := workload()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		statuses  = make(map[int]int)
		dropped   int
	)
	next := make(chan int)
	go func() {
		for i := 0; i < requests; i++ {
			next <- i
		}
		close(next)
	}()
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				item := items[i%len(items)]
				t0 := time.Now()
				resp, err := client.Post(base+item.path, "application/json", strings.NewReader(item.body))
				d := time.Since(t0)
				if err != nil {
					mu.Lock()
					dropped++
					mu.Unlock()
					continue
				}
				// Drain outside the lock: holding it across the body read
				// would serialize response consumption and the driver would
				// no longer sustain -concurrency requests truly in flight.
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				statuses[resp.StatusCode]++
				latencies = append(latencies, d)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i]
	}
	fmt.Fprintf(out, "requests=%d concurrency=%d elapsed=%v rate=%.0f/s\n",
		requests, concurrency, elapsed.Round(time.Millisecond), float64(requests)/elapsed.Seconds())
	codes := make([]int, 0, len(statuses))
	for c := range statuses {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	non2xx := 0
	var non2xxDetail []string
	for _, c := range codes {
		fmt.Fprintf(out, "status %d: %d\n", c, statuses[c])
		if c < 200 || c > 299 {
			non2xx += statuses[c]
			non2xxDetail = append(non2xxDetail, fmt.Sprintf("%d:%d", c, statuses[c]))
		}
	}
	if non2xx > 0 {
		fmt.Fprintf(out, "non-2xx: %d (%s)\n", non2xx, strings.Join(non2xxDetail, " "))
	} else {
		fmt.Fprintln(out, "non-2xx: 0")
	}
	fmt.Fprintf(out, "latency p50=%v p95=%v p99=%v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond))

	hitRatio, err := scrapeHitRatio(client, metricsBases)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "cache hit ratio: %.3f\n", hitRatio)

	if dropped > 0 {
		return fmt.Errorf("%d dropped connections", dropped)
	}
	for c, n := range statuses {
		if c >= 500 {
			return fmt.Errorf("%d requests answered %d", n, c)
		}
	}
	if statuses[http.StatusOK] != requests {
		return fmt.Errorf("only %d/%d requests answered 200", statuses[http.StatusOK], requests)
	}
	if hitRatio <= 0.5 {
		return fmt.Errorf("cache hit ratio %.3f ≤ 0.5", hitRatio)
	}
	fmt.Fprintln(out, "load check PASS")
	return nil
}

var (
	cacheHitsRe   = regexp.MustCompile(`(?m)^rmtd_cache_hits_total ([0-9]+)$`)
	cacheMissesRe = regexp.MustCompile(`(?m)^rmtd_cache_misses_total ([0-9]+)$`)
	peerHitsRe    = regexp.MustCompile(`(?m)^rmtd_peer_cache_hits_total ([0-9]+)$`)
)

// scrapeHitRatio aggregates hits/(hits+misses) over every server in bases —
// a fleet's cache effectiveness is a property of the shards jointly, not of
// any one LRU.
func scrapeHitRatio(client *http.Client, bases []string) (float64, error) {
	var hits, misses int64
	for _, base := range bases {
		text, err := scrapeMetrics(client, base)
		if err != nil {
			return 0, err
		}
		h, err := scrapeCounter(text, cacheHitsRe, "rmtd_cache_hits_total")
		if err != nil {
			return 0, err
		}
		m, err := scrapeCounter(text, cacheMissesRe, "rmtd_cache_misses_total")
		if err != nil {
			return 0, err
		}
		hits, misses = hits+h, misses+m
	}
	if hits+misses == 0 {
		return 0, nil
	}
	return float64(hits) / float64(hits+misses), nil
}

func scrapeMetrics(client *http.Client, base string) ([]byte, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, fmt.Errorf("scrape metrics: %w", err)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

func scrapeCounter(text []byte, re *regexp.Regexp, name string) (int64, error) {
	m := re.FindSubmatch(text)
	if m == nil {
		return 0, fmt.Errorf("%s missing from /metrics", name)
	}
	return strconv.ParseInt(string(m[1]), 10, 64)
}

// checkByteIdentity serves one deterministic multi-trial run request from
// two fresh in-process servers with different worker counts and requires
// byte-identical bodies — the guarantee the result cache's first-body-wins
// rule relies on.
func checkByteIdentity(out io.Writer) error {
	const req = `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4,` +
		`"engine":"async","schedule":"lifo","seed":3,"trials":6,"corrupt":[1],"attack":"silent"}`
	var bodies [][]byte
	for _, workers := range []int{1, 8} {
		srv := server.New(server.Options{Workers: workers, LogWriter: io.Discard})
		rec := newLocalPost(srv, "/v1/run", req)
		srv.Close()
		if rec.status != http.StatusOK {
			return fmt.Errorf("byte-identity probe (workers=%d): status %d: %s", workers, rec.status, rec.body.String())
		}
		bodies = append(bodies, rec.body.Bytes())
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		return fmt.Errorf("same request, different bodies across worker counts:\n%s\nvs\n%s", bodies[0], bodies[1])
	}
	fmt.Fprintln(out, "byte-identity across worker counts PASS")
	return nil
}

// ------------------------------------------------------------------- watch

// runWatchSmoke drives one POST /v1/watch subscription through a scripted
// churn history and asserts the exact verdict-change events:
//
//	rev 0  base butterfly                   solvable      → event
//	rev 1  +chord 1-2                       solvable      → silent
//	rev 2  -node 3 (third path gone)        unsolvable    → event
//	rev 3  node 3 re-wired 0-3, 3-4         solvable      → event
//
// Any extra line, missing line, wrong revision or wrong verdict fails — the
// stream contract is "rev 0 plus exactly the flips", not "at least them".
func runWatchSmoke(out io.Writer, base string) error {
	const instanceLine = `{"graph":"0-1 0-2 0-3 1-4 2-4 3-4","structure":"1;2;3","dealer":0,"receiver":4}`
	deltas := []string{
		`{"add_edges":[[1,2]]}`,
		`{"remove_nodes":[3]}`,
		`{"add_nodes":[3],"add_edges":[[0,3],[3,4]]}`,
	}
	body := instanceLine + "\n" + strings.Join(deltas, "\n") + "\n"

	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Post(base+"/v1/watch", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		return fmt.Errorf("watch: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("watch: read stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("watch: status %d: %s", resp.StatusCode, raw)
	}

	type event struct {
		Rev   int    `json:"rev"`
		Key   string `json:"key"`
		Error string `json:"error"`
		PKA   struct {
			Solvable bool `json:"solvable"`
		} `json:"pka"`
		ZCPA *struct {
			Solvable bool `json:"solvable"`
		} `json:"zcpa"`
	}
	var events []event
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("watch: bad stream line %s: %w", line, err)
		}
		if ev.Error != "" {
			return fmt.Errorf("watch: in-band error at rev %d: %s", ev.Rev, ev.Error)
		}
		events = append(events, ev)
	}

	want := []struct {
		rev      int
		solvable bool
	}{{0, true}, {2, false}, {3, true}}
	if len(events) != len(want) {
		return fmt.Errorf("watch: %d events, want exactly %d (rev 0 + the two flips):\n%s", len(events), len(want), raw)
	}
	for i, w := range want {
		ev := events[i]
		if ev.Rev != w.rev {
			return fmt.Errorf("watch: event %d at rev %d, want rev %d", i, ev.Rev, w.rev)
		}
		if ev.PKA.Solvable != w.solvable {
			return fmt.Errorf("watch: rev %d pka solvable=%v, want %v", ev.Rev, ev.PKA.Solvable, w.solvable)
		}
		if ev.ZCPA == nil || ev.ZCPA.Solvable != w.solvable {
			return fmt.Errorf("watch: rev %d zcpa verdict %+v, want solvable=%v", ev.Rev, ev.ZCPA, w.solvable)
		}
		fmt.Fprintf(out, "watch event rev=%d solvable=%v key=%s\n", ev.Rev, ev.PKA.Solvable, ev.Key[:12])
	}
	fmt.Fprintln(out, "watch smoke PASS")
	return nil
}

// ------------------------------------------------------------------- fleet

// runFleet is the -fleet check: boot 3 shards + router, drive the workload
// through the router, then hit every shard directly with every item. The
// direct hits land on shards that do not own the instance; those must serve
// the owning peer's cached bytes (cross-shard peer hits > 0) and every
// reply must be byte-identical to the router's.
func runFleet(out io.Writer, concurrency, requests int) error {
	stop, routerBase, shardBases, err := bootFleet(3, concurrency)
	if err != nil {
		return err
	}
	defer stop()
	fmt.Fprintf(out, "fleet: %d shards behind router %s\n", len(shardBases), routerBase)

	if err := driveLoad(out, routerBase, shardBases, concurrency, requests); err != nil {
		return err
	}

	client := &http.Client{Timeout: 60 * time.Second}
	items := workload()
	// The router's replies are the fleet's canonical bytes: each comes from
	// the instance's owning shard, cache-hot after the load phase.
	want := make([][]byte, len(items))
	for i, item := range items {
		status, body, err := postOnce(client, routerBase, item)
		if err != nil {
			return fmt.Errorf("router reference %s: %w", item.path, err)
		}
		if status != http.StatusOK {
			return fmt.Errorf("router reference %s: status %d: %s", item.path, status, body)
		}
		want[i] = body
	}
	for _, base := range shardBases {
		for i, item := range items {
			status, body, err := postOnce(client, base, item)
			if err != nil {
				return fmt.Errorf("direct %s %s: %w", base, item.path, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("direct %s %s: status %d: %s", base, item.path, status, body)
			}
			if !bytes.Equal(body, want[i]) {
				return fmt.Errorf("shard %s serves different bytes than the router for %s:\n%s\nvs\n%s",
					base, item.path, body, want[i])
			}
		}
	}
	fmt.Fprintln(out, "fleet byte-identity across shards PASS")

	var peerHits int64
	for _, base := range shardBases {
		text, err := scrapeMetrics(client, base)
		if err != nil {
			return err
		}
		h, err := scrapeCounter(text, peerHitsRe, "rmtd_peer_cache_hits_total")
		if err != nil {
			return err
		}
		peerHits += h
	}
	fmt.Fprintf(out, "cross-shard peer cache hits: %d\n", peerHits)
	if peerHits == 0 {
		return fmt.Errorf("no cross-shard cache reuse: every shard recomputed its misses")
	}
	fmt.Fprintln(out, "fleet check PASS")
	return nil
}

// bootFleet starts n quiet in-process shards — each configured with the
// full peer list, as `rmtd -peers ... -self ...` would be — plus a router
// over them, all on ephemeral ports.
func bootFleet(n, concurrency int) (stop func(), routerBase string, shardBases []string, err error) {
	var stops []func()
	stopAll := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, lerr := net.Listen("tcp", "127.0.0.1:0")
		if lerr != nil {
			stopAll()
			return nil, "", nil, lerr
		}
		stops = append(stops, func() { ln.Close() })
		listeners[i] = ln
		shardBases = append(shardBases, "http://"+ln.Addr().String())
	}
	for i, ln := range listeners {
		srv := server.New(server.Options{
			QueueDepth: 2 * concurrency,
			LogWriter:  io.Discard,
			Peers:      shardBases,
			Self:       shardBases[i],
		})
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		stops = append(stops, func() { hs.Close(); srv.Close() })
	}
	rt, err := server.NewRouter(server.RouterOptions{Shards: shardBases, LogWriter: io.Discard})
	if err != nil {
		stopAll()
		return nil, "", nil, err
	}
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stopAll()
		return nil, "", nil, err
	}
	rhs := &http.Server{Handler: rt}
	go rhs.Serve(rln)
	stops = append(stops, func() { rhs.Close() })
	return stopAll, "http://" + rln.Addr().String(), shardBases, nil
}

func postOnce(client *http.Client, base string, item workItem) (int, []byte, error) {
	resp, err := client.Post(base+item.path, "application/json", strings.NewReader(item.body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

type localRecorder struct {
	status int
	body   bytes.Buffer
	header http.Header
}

func (r *localRecorder) Header() http.Header         { return r.header }
func (r *localRecorder) WriteHeader(code int)        { r.status = code }
func (r *localRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// newLocalPost runs one POST through the handler without a TCP hop.
func newLocalPost(h http.Handler, path, body string) *localRecorder {
	rec := &localRecorder{status: http.StatusOK, header: make(http.Header)}
	req, _ := http.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	return rec
}
