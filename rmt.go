// Package rmt is a library for Perfectly Reliable Message Transmission
// (RMT) in synchronous networks under general (Hirt–Maurer) Byzantine
// adversaries and partial topology knowledge, implementing
//
//	A. Pagourtzis, G. Panagiotakos, D. Sakavalas.
//	"Reliable Message Transmission under Partial Knowledge and General
//	Adversaries" (brief announcement at PODC 2016).
//
// The library provides:
//
//   - RMT-PKA, the paper's unique protocol for the partial knowledge model
//     (RunPKA), with its tight feasibility characterization via RMT-cuts
//     (SolvablePKA, FindRMTCut);
//   - 𝒵-CPA for ad hoc networks (RunZCPA) with the RMT 𝒵-pp cut
//     characterization (SolvableZCPA, FindZppCut);
//   - the PPA full-knowledge baseline (RunPPA) with the 𝒵-pair cut
//     condition (FindPairCut);
//   - the ⊕ joint-view operation on adversary structures (JoinViews) and
//     the partial-knowledge machinery (view functions, local structures);
//   - Section 5's self-reduction: protocol Π on basic instances and the
//     Decision Protocol plugged into 𝒵-CPA as a decider (selfred types);
//   - a network simulator with deterministic lockstep, goroutine and
//     seeded-async engines (NewScheduler), a Byzantine strategy zoo, and an
//     experiment harness regenerating every table in EXPERIMENTS.md.
//
// # Quick start
//
//	g, _ := rmt.ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
//	z := rmt.StructureOf([]int{1}, []int{2}, []int{3})
//	in, _ := rmt.NewAdHocInstance(g, z, 0, 4)
//	if rmt.SolvablePKA(in) {
//		res, _ := rmt.RunPKA(in, "attack at dawn", nil, rmt.PKAOptions{})
//		x, ok := res.DecisionOf(4) // "attack at dawn", true
//		_ = x
//		_ = ok
//	}
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package rmt

import (
	"io"

	"rmt/internal/adversary"
	"rmt/internal/byzantine"
	"rmt/internal/core"
	"rmt/internal/graph"
	"rmt/internal/instance"
	_ "rmt/internal/mbrb" // registers the "mbrb" protocol
	"rmt/internal/network"
	"rmt/internal/nodeset"
	"rmt/internal/ppa"
	"rmt/internal/protocol"
	"rmt/internal/selfred"
	_ "rmt/internal/smt" // registers the "smt" protocol
	"rmt/internal/view"
	"rmt/internal/zcpa"
)

// Core model types, aliased from the implementation packages so that public
// and internal code share one set of values.
type (
	// Graph is an undirected network topology over integer node IDs.
	Graph = graph.Graph
	// Path is a simple path as a node sequence.
	Path = graph.Path
	// Set is a set of node IDs.
	Set = nodeset.Set
	// Structure is a monotone adversary structure (antichain form).
	Structure = adversary.Structure
	// Restricted is a structure together with the node set it is
	// restricted to — the currency of the ⊕ joint-view operation.
	Restricted = adversary.Restricted
	// ViewFunction is a partial-knowledge view function γ.
	ViewFunction = view.Function
	// Instance is the RMT problem tuple (G, 𝒵, γ, D, R).
	Instance = instance.Instance
	// Value is an element of the message space X.
	Value = network.Value
	// Result summarizes a protocol run.
	Result = network.Result
	// Process is a player state machine; corrupted players are arbitrary
	// Processes.
	Process = network.Process
	// Engine is the execution-engine contract; resolve one by registry
	// name with ParseEngine (lockstep, goroutine, async, wire).
	Engine = network.Engine
	// Scheduler is the async engine's delivery policy: it assigns each
	// accepted send a delivery round (see NewScheduler for the stock
	// policies); install via RunOptions.Scheduler.
	Scheduler = network.Scheduler
	// Blueprint is the pure-data run recipe required by engines that
	// execute players in other OS processes (the wire engine); install via
	// RunOptions.Blueprint.
	Blueprint = network.Blueprint
	// RMTCut witnesses the partial-knowledge impossibility condition.
	RMTCut = core.RMTCut
	// ZppCut witnesses the ad hoc impossibility condition.
	ZppCut = zcpa.ZppCut
	// Delta is a batch of topology edits applicable to an Instance; see
	// ApplyDelta and ChainKey for the churn machinery.
	Delta = instance.Delta
	// IncrementalRMTCut maintains an RMT-cut verdict across topology
	// revisions, re-verifying the previous witness before re-enumerating.
	IncrementalRMTCut = core.IncrementalCut
	// IncrementalZppCut is the ad hoc counterpart of IncrementalRMTCut.
	IncrementalZppCut = zcpa.IncrementalCut
	// RunOptions is the unified option set of the protocol runtime, shared
	// by every registered protocol (see Protocols, RunProtocol).
	RunOptions = protocol.Options
	// PKAOptions tweaks an RMT-PKA run.
	PKAOptions = core.Options
	// ZCPAOptions tweaks a 𝒵-CPA run.
	ZCPAOptions = zcpa.Options
	// Tracer observes a run event-by-event (sends, drops, deliveries,
	// decisions, halts, round boundaries); install via RunOptions.Tracers.
	Tracer = network.Tracer
	// JSONLTracer streams run events as JSON lines (see NewJSONLTracer).
	JSONLTracer = network.JSONLTracer
	// Basic is a Figure-1 basic instance for the Section 5 machinery.
	Basic = selfred.Basic
	// PiDecider is the Theorem 9 Decision Protocol as a 𝒵-CPA decider.
	PiDecider = selfred.PiDecider
)

// Engines. The engine layer is a registry (see Engines, ParseEngine): these
// vars are the built-ins, and importing rmt/internal/wire adds the
// real-socket "wire" engine.
var (
	Lockstep  = network.Lockstep
	Goroutine = network.Goroutine
	Async     = network.Async
)

// ParseEngine resolves an engine by registry name ("lockstep", "goroutine",
// "async", plus any engine registered by imported packages, such as "wire").
func ParseEngine(name string) (Engine, error) { return network.ParseEngine(name) }

// Engines returns the names of every registered engine, sorted.
func Engines() []string { return network.EngineNames() }

// SchedulerNames returns the stock async-schedule names, sorted: "sync"
// (zero-fault), "random" (seeded delay), "fifo" (seeded delay, FIFO per
// link), "lifo" (last-writer-first reordering), "partition"
// (partition-then-heal).
func SchedulerNames() []string { return network.SchedulerNames() }

// NewScheduler builds the named stock scheduler. Every random choice flows
// from the seed, so equal (name, seed) pairs reproduce a run byte-for-byte.
// Schedulers are single-use: build a fresh one per run.
func NewScheduler(name string, seed int64) (Scheduler, error) {
	return network.NewScheduler(name, seed)
}

// NewGraph returns an empty topology; add channels with AddEdge.
func NewGraph() *Graph { return graph.New() }

// ParseEdgeList builds a topology from "0-1, 1-2; 7"-style text (bare
// integers add isolated nodes).
func ParseEdgeList(s string) (*Graph, error) { return graph.ParseEdgeList(s) }

// NodeSet builds a Set from IDs.
func NodeSet(ids ...int) Set { return nodeset.Of(ids...) }

// StructureOf builds an adversary structure from its (not necessarily
// maximal) corruption sets, given as ID slices.
func StructureOf(sets ...[]int) Structure { return adversary.FromSlices(sets...) }

// NoCorruption returns the structure {∅}.
func NoCorruption() Structure { return adversary.Trivial() }

// Threshold returns the global threshold structure: any ≤ t nodes of the
// universe.
func Threshold(universe Set, t int) Structure { return adversary.GlobalThreshold(universe, t) }

// TLocal returns Koo's t-locally bounded structure on g (≤ t corruptions in
// every neighborhood). Exponential construction; intended for small graphs.
func TLocal(g *Graph, t int) Structure {
	return adversary.TLocal(g.Nodes(), func(v int) Set { return g.Neighbors(v) }, t)
}

// AdHocView returns the ad hoc view function (neighborhood stars).
func AdHocView(g *Graph) ViewFunction { return view.AdHoc(g) }

// RadiusView returns the radius-k induced-ball view function.
func RadiusView(g *Graph, k int) ViewFunction { return view.Radius(g, k) }

// FullView returns the full-knowledge view function.
func FullView(g *Graph) ViewFunction { return view.Full(g) }

// NewInstance validates and assembles an RMT instance.
func NewInstance(g *Graph, z Structure, gamma ViewFunction, dealer, receiver int) (*Instance, error) {
	return instance.New(g, z, gamma, dealer, receiver)
}

// NewAdHocInstance assembles an instance in the ad hoc model.
func NewAdHocInstance(g *Graph, z Structure, dealer, receiver int) (*Instance, error) {
	return instance.AdHoc(g, z, dealer, receiver)
}

// JoinViews computes the ⊕ joint-view of restricted adversary structures
// (Definition 2): the maximal structure consistent with all of them.
func JoinViews(rs ...Restricted) Restricted { return adversary.JoinAll(rs...) }

// Registry names of the built-in protocols, usable with RunProtocol.
const (
	ProtocolPKA       = protocol.PKA
	ProtocolZCPA      = protocol.ZCPA
	ProtocolPPA       = protocol.PPA
	ProtocolBroadcast = protocol.Broadcast
	ProtocolMBRB      = protocol.MBRB
	ProtocolSMT       = protocol.SMT
)

// Protocols returns the names of every registered protocol, sorted.
func Protocols() []string { return protocol.Names() }

// RunProtocol resolves a protocol by registry name and executes it on the
// instance with dealer value xD. A non-nil corrupt map takes precedence
// over opts.Corrupt. Receiver-decides protocols stop as soon as the
// receiver decides; broadcast-style protocols run until quiescence.
func RunProtocol(name string, in *Instance, xD Value, corrupt map[int]Process, opts RunOptions) (*Result, error) {
	if corrupt != nil {
		opts.Corrupt = corrupt
	}
	return protocol.RunByName(name, in, xD, opts)
}

// RunPKA executes RMT-PKA (Protocol 1) with dealer value xD. Nodes in
// corrupt run the supplied Byzantine processes instead of the protocol; the
// dealer and receiver cannot be corrupted.
func RunPKA(in *Instance, xD Value, corrupt map[int]Process, opts PKAOptions) (*Result, error) {
	return RunProtocol(ProtocolPKA, in, xD, corrupt, opts)
}

// RunZCPA executes 𝒵-CPA adapted for RMT (Section 4).
func RunZCPA(in *Instance, xD Value, corrupt map[int]Process, opts ZCPAOptions) (*Result, error) {
	return RunProtocol(ProtocolZCPA, in, xD, corrupt, opts)
}

// RunPPA executes the full-knowledge Path Propagation baseline.
func RunPPA(in *Instance, xD Value, corrupt map[int]Process, engine Engine) (*Result, error) {
	return RunProtocol(ProtocolPPA, in, xD, corrupt, RunOptions{Engine: engine})
}

// RunMBRB executes the signature-free MBRB reliable-broadcast protocol on a
// complete-graph instance. Set opts.MABudget to the message adversary's
// suppression budget d (the quorums provision for it) and opts.MsgAdversary
// to an actual suppression policy (NewMessageAdversary, NewEclipse) to drop
// copies; MBRB delivers at every correct player iff n > 3t + 2d
// (MBRBFeasible).
func RunMBRB(in *Instance, xD Value, corrupt map[int]Process, opts RunOptions) (*Result, error) {
	return RunProtocol(ProtocolMBRB, in, xD, corrupt, opts)
}

// RunSMT executes the secure message transmission protocol: the dealer
// splits xD into one additive share per disjoint-from-listening path and the
// receiver reconstructs only once every share arrives. Set opts.Listen to
// the listening structure ℒ the run must keep the secret from; the protocol
// refuses (IsCapsError) pairings that SMTFeasible rejects.
func RunSMT(in *Instance, xD Value, corrupt map[int]Process, opts RunOptions) (*Result, error) {
	return RunProtocol(ProtocolSMT, in, xD, corrupt, opts)
}

// Generalised is the fully generalised adversary of the SMT model: a
// corruption structure 𝒵 (active, Byzantine) combined with a listening
// structure ℒ (passive, eavesdropping). Its Feasible method is the
// Dowden-style cut characterization SMTFeasible evaluates.
type Generalised = adversary.Generalised

// NewGeneralised pairs a corruption structure with a listening structure.
// Either may be NoCorruption() for a purely passive or purely active
// adversary.
func NewGeneralised(z, listen Structure) Generalised { return adversary.NewGeneralised(z, listen) }

// IsCapsError reports whether err (anywhere in its chain) is a protocol
// capability rejection — the protocol refusing the requested
// instance/option pairing outright rather than failing mid-run. CLIs treat
// these as usage errors (exit 2), not run failures.
func IsCapsError(err error) bool { return protocol.IsCapsError(err) }

// MessageAdversary is the message-suppression adversary of the MBRB model:
// per broadcast it may drop up to d copies before they enter the delivery
// calendar (suppressed copies surface as Lose tracer events, keeping
// Sent = Delivered + Lost). Adversaries are single-use, like Schedulers.
type MessageAdversary = network.MessageAdversary

// Stock message-adversary policy names, usable with NewMessageAdversary.
const (
	MATargeted = network.MATargeted
	MARandom   = network.MARandom
	MAEclipse  = network.MAEclipse
)

// MessageAdversaryNames returns the stock suppression policy names, sorted.
func MessageAdversaryNames() []string { return network.MessageAdversaryNames() }

// NewMessageAdversary builds the named stock suppression policy with
// per-broadcast budget d. Every random choice flows from the seed, so equal
// (name, d, seed) triples reproduce a run byte-for-byte.
func NewMessageAdversary(name string, d int, seed int64) (MessageAdversary, error) {
	return network.NewMessageAdversary(name, d, seed)
}

// NewEclipse builds an eclipse message adversary suppressing every copy
// addressed to the given victims, budget permitting (d = len(victims)).
func NewEclipse(victims ...int) MessageAdversary { return network.NewEclipse(victims...) }

// NewJSONLTracer returns a Tracer streaming every run event as one JSON
// object per line on w, for offline analysis.
func NewJSONLTracer(w io.Writer) *JSONLTracer { return network.NewJSONLTracer(w) }

// SolvablePKA reports whether RMT is solvable on the instance — the tight
// condition of Theorems 3 & 5 (no RMT-cut). RMT-PKA succeeds exactly on
// solvable instances (it is unique, Corollary 6).
func SolvablePKA(in *Instance) bool { return core.Solvable(in) }

// SolvableZCPA reports whether ad hoc RMT is solvable — Theorems 7 & 8 (no
// RMT 𝒵-pp cut). 𝒵-CPA succeeds exactly on solvable instances.
func SolvableZCPA(in *Instance) bool { return zcpa.Solvable(in) }

// FindRMTCut searches for a Definition-3 RMT-cut witness.
func FindRMTCut(in *Instance) (RMTCut, bool) { return core.FindRMTCut(in) }

// FindZppCut searches for a Definition-7 RMT 𝒵-pp cut witness.
func FindZppCut(in *Instance) (ZppCut, bool) { return zcpa.FindRMTZppCut(in) }

// ApplyDelta applies a topology delta to an instance, rebuilding the view
// function from the edited graph with rebuildView (callers holding a
// gen.Knowledge level can use gen.ApplyDelta, which passes level.View).
func ApplyDelta(in *Instance, d Delta, rebuildView func(*Graph) ViewFunction) (*Instance, error) {
	return instance.Apply(in, d, rebuildView)
}

// ChainKey extends a (base instance, delta chain) cache key by one delta:
// starting from in.CanonicalKey(), each delta hashes the previous key with
// its canonical rendering, so every edit history has its own identity.
func ChainKey(prev string, d Delta) string { return instance.ChainKey(prev, d) }

// FindPairCut searches for the full-knowledge 𝒵-pair cut (PPA's condition).
func FindPairCut(in *Instance) (z1, z2 Set, found bool) { return ppa.PairCut(in) }

// VerifyRMTCut independently checks a claimed RMT-cut witness against
// Definition 3 — the cheap counterpart to FindRMTCut's exponential search.
func VerifyRMTCut(in *Instance, cut RMTCut) error { return core.VerifyRMTCut(in, cut) }

// VerifyZppCut independently checks a claimed RMT 𝒵-pp cut witness against
// Definition 7.
func VerifyZppCut(in *Instance, cut ZppCut) error { return zcpa.VerifyZppCut(in, cut) }

// FindRMTCutBounded is the anytime variant of FindRMTCut: it inspects at
// most maxCandidates receiver-side candidates (0 = unlimited) and
// additionally reports whether the search space was fully covered. Found
// witnesses are always genuine.
func FindRMTCutBounded(in *Instance, maxCandidates int) (cut RMTCut, found, complete bool) {
	return core.FindRMTCutBounded(in, maxCandidates)
}

// FindZppCutBounded is the anytime variant of FindZppCut.
func FindZppCutBounded(in *Instance, maxCandidates int) (cut ZppCut, found, complete bool) {
	return zcpa.FindRMTZppCutBounded(in, maxCandidates)
}

// ResilientPKA verifies operationally that RMT-PKA delivers against every
// maximal corruption set (silent adversary — the liveness worst case).
func ResilientPKA(in *Instance) (bool, error) { return core.Resilient(in) }

// ResilientZCPA verifies operationally that 𝒵-CPA delivers against every
// maximal corruption set.
func ResilientZCPA(in *Instance) (bool, error) { return zcpa.Resilient(in) }

// SilentCorruption corrupts every node of t with the silent (blocking)
// strategy — the worst case for liveness against safe protocols.
func SilentCorruption(t Set) map[int]Process { return byzantine.SilentProcesses(t) }

// AttackStrategies returns the names of every registered Byzantine attack
// strategy, sorted — the keys usable with NewAttack and rmtsim's -attack.
func AttackStrategies() []string { return byzantine.Names() }

// NewAttack resolves a strategy by registry name and builds the
// corrupt-process overlay for the nodes of t, with forged as the attacker's
// preferred wrong value (ignored by strategies that never inject values).
func NewAttack(name string, in *Instance, t Set, forged Value) (map[int]Process, error) {
	s, ok := byzantine.Get(name)
	if !ok {
		return nil, byzantine.UnknownError(name)
	}
	return s.Build(in, t, forged), nil
}

// AttackZoo returns the full registered Byzantine strategy suite against an
// instance for corruption set t — from protocol-agnostic nuisances (silent,
// spammer, replayer) to the protocol-aware attacks of Theorem 4's adversary
// (equivocator, path-forger, view-liar, eclipser, and the classic forgery
// suite). Keys are strategy names; see AttackStrategies.
func AttackZoo(in *Instance, t Set, forged Value) map[string]map[int]Process {
	zoo := make(map[string]map[int]Process)
	for _, s := range byzantine.All() {
		zoo[s.Name()] = s.Build(in, t, forged)
	}
	return zoo
}

// NewBasic builds a Figure-1 basic instance (middle set + structure).
func NewBasic(middle Set, z Structure) Basic { return selfred.NewBasic(middle, z) }

// NewPiDecider builds the Theorem 9 Decision Protocol for an instance's
// local knowledge, pluggable into ZCPAOptions.Decider.
func NewPiDecider(in *Instance) *PiDecider {
	return &PiDecider{LK: in.LocalKnowledge()}
}
