package rmt

import (
	"rmt/internal/feasibility"
	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// FeasibleReceivers computes, for a fixed dealer, every node that can act
// as an RMT receiver on (G, 𝒵, γ) — the paper's "network design phase" use
// of the RMT-cut: the exact sub-network in which reliable transmission is
// possible. Nodes the structure can corrupt are excluded (the model assumes
// an honest receiver), as is the dealer itself.
func FeasibleReceivers(g *Graph, z Structure, gamma ViewFunction, dealer int) Set {
	out := nodeset.Empty()
	ground := z.Ground()
	g.Nodes().ForEach(func(r int) bool {
		if r == dealer || ground.Contains(r) {
			return true
		}
		in, err := instance.New(g, z, gamma, dealer, r)
		if err != nil {
			return true
		}
		if SolvablePKA(in) {
			out = out.Add(r)
		}
		return true
	})
	return out
}

// MinimalKnowledgeRadius returns the smallest view radius k at which RMT
// from dealer to receiver becomes solvable on (G, 𝒵), and true — or
// (0, false) if it is unsolvable even with full knowledge. This is the
// paper's "minimal amount of initial knowledge" (Section 3) measured on the
// radius-interpolated view lattice.
func MinimalKnowledgeRadius(g *Graph, z Structure, dealer, receiver int) (int, bool) {
	diam := g.Diameter()
	for k := 0; k <= diam; k++ {
		in, err := NewInstance(g, z, RadiusView(g, k), dealer, receiver)
		if err != nil {
			return 0, false
		}
		if SolvablePKA(in) {
			return k, true
		}
	}
	return 0, false
}

// MBRBFeasible reports the signature-free MBRB bound: reliable broadcast on
// a complete n-player network tolerating t Byzantine players and a message
// adversary suppressing up to d copies per broadcast is possible iff
// n > 3t + 2d.
func MBRBFeasible(n, t, d int) bool { return feasibility.MBRBFeasible(n, t, d) }

// MBRBVerdict is an instance-level MBRB feasibility answer: the (n, t)
// extracted from the instance, the requested suppression budget d, and the
// n > 3t + 2d verdict.
type MBRBVerdict = feasibility.MBRBVerdict

// MBRBVerdictFor evaluates the MBRB bound on a complete-graph instance at
// suppression budget d, extracting t as the largest maximal corruption set.
// It errors on incomplete networks (the bound is only tight there) and on
// negative budgets.
func MBRBVerdictFor(in *Instance, d int) (MBRBVerdict, error) {
	return feasibility.MBRBVerdictFor(in, d)
}

// MBRBBoundary is a named just-feasible / just-infeasible MBRB fixture pair
// pinning the n = 3t + 2d + 1 boundary; see MBRBBoundaries.
type MBRBBoundary = feasibility.MBRBBoundary

// MBRBBoundaries returns the stock boundary battery: for each named (t, d)
// pair, Feasible() builds K_{3t+2d+1} (MBRB delivers at every correct
// non-victim under t silent Byzantine players plus a d-victim eclipse) and
// Infeasible() builds K_{3t+2d} (nobody delivers). The flip is exactly one
// node wide, predicately and operationally.
func MBRBBoundaries() []MBRBBoundary { return feasibility.MBRBBoundaries() }

// SMTFeasible reports whether secure message transmission is possible on the
// instance against the fully generalised adversary (𝒵, listen): for every
// listening set L ∈ ℒ, Ground(𝒵) ∪ L must leave a D–R path — the
// Dowden-style cut condition. The "smt" protocol succeeds exactly on
// feasible pairings.
func SMTFeasible(in *Instance, listen Structure) bool {
	return feasibility.SMTFeasible(in, listen)
}

// SMTVerdict is an instance-level SMT feasibility answer with witnesses: the
// share-carrying path family on the feasible side, or the violated cut (a
// disruption cut, or a secrecy cut with the listening set completing it) on
// the infeasible side.
type SMTVerdict = feasibility.SMTVerdict

// SMTVerdictFor evaluates SMTFeasible on the instance and attaches the
// matching witness: the smt protocol's planned path family when feasible,
// the failing cut when not.
func SMTVerdictFor(in *Instance, listen Structure) SMTVerdict {
	return feasibility.SMTVerdictFor(in, listen)
}

// SMTBoundary is a named just-feasible / just-infeasible SMT fixture pair
// whose adversaries differ by exactly one maximal set; see SMTBoundaries.
type SMTBoundary = feasibility.SMTBoundary

// SMTBoundaries returns the stock SMT boundary battery: each pair flips the
// verdict by widening the listening structure or the corruption structure by
// a single maximal set.
func SMTBoundaries() []SMTBoundary { return feasibility.SMTBoundaries() }

// SMTBoundaryByName returns the named stock boundary (see SMTBoundaries).
func SMTBoundaryByName(name string) (SMTBoundary, bool) {
	return feasibility.SMTBoundaryByName(name)
}
