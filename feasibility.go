package rmt

import (
	"rmt/internal/instance"
	"rmt/internal/nodeset"
)

// FeasibleReceivers computes, for a fixed dealer, every node that can act
// as an RMT receiver on (G, 𝒵, γ) — the paper's "network design phase" use
// of the RMT-cut: the exact sub-network in which reliable transmission is
// possible. Nodes the structure can corrupt are excluded (the model assumes
// an honest receiver), as is the dealer itself.
func FeasibleReceivers(g *Graph, z Structure, gamma ViewFunction, dealer int) Set {
	out := nodeset.Empty()
	ground := z.Ground()
	g.Nodes().ForEach(func(r int) bool {
		if r == dealer || ground.Contains(r) {
			return true
		}
		in, err := instance.New(g, z, gamma, dealer, r)
		if err != nil {
			return true
		}
		if SolvablePKA(in) {
			out = out.Add(r)
		}
		return true
	})
	return out
}

// MinimalKnowledgeRadius returns the smallest view radius k at which RMT
// from dealer to receiver becomes solvable on (G, 𝒵), and true — or
// (0, false) if it is unsolvable even with full knowledge. This is the
// paper's "minimal amount of initial knowledge" (Section 3) measured on the
// radius-interpolated view lattice.
func MinimalKnowledgeRadius(g *Graph, z Structure, dealer, receiver int) (int, bool) {
	diam := g.Diameter()
	for k := 0; k <= diam; k++ {
		in, err := NewInstance(g, z, RadiusView(g, k), dealer, receiver)
		if err != nil {
			return 0, false
		}
		if SolvablePKA(in) {
			return k, true
		}
	}
	return 0, false
}
