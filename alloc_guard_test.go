package rmt

// Tier-1 allocation guard for the PKA receiver hot path. The full
// benchguard (make benchguard) is opt-in because wall-clock numbers are too
// machine-sensitive to gate every PR — but allocation counts are not: they
// are deterministic modulo GC-driven pool evictions, so a cheap
// AllocsPerRun check can run in the ordinary test suite and catch the
// packed-receiver rewrite regressing to per-run heap churn.

import (
	"testing"

	"rmt/internal/benchdef"
	"rmt/internal/gen"
)

// pkaRunAllocBudget is deliberately looser than the steady-state figure
// (~35 allocs/op in BENCH.json, guarded exactly by benchguard): the tier-1
// budget only has to catch the hot path falling off a cliff — a map
// rebuilt per run, a transcript recorded unconditionally — not one stray
// allocation, and the slack absorbs an unluckily timed GC emptying the
// run-state pool mid-measurement.
const pkaRunAllocBudget = 100

func TestPKARunAllocBudget(t *testing.T) {
	if raceEnabled {
		// sync.Pool randomly bypasses caching under the race detector, so
		// pooled run states look freshly allocated and the count is noise.
		t.Skip("allocation counts are not meaningful under -race")
	}
	in, err := benchdef.ChainInstance(3, 2, gen.Radius2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		res, err := RunPKA(in, "x", nil, PKAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := res.DecisionOf(in.Receiver); !ok {
			t.Fatal("undecided")
		}
	}
	// Warm the run-state pool and the instance's memo caches so the
	// measurement sees the steady state a long-running caller sees.
	for i := 0; i < 3; i++ {
		run()
	}
	avg := testing.AllocsPerRun(20, run)
	if avg > pkaRunAllocBudget {
		t.Errorf("RunPKA allocates %.1f allocs/op, budget %d — the packed receiver hot path regressed", avg, pkaRunAllocBudget)
	}
}
