//go:build race

package rmt

// raceEnabled reports whether the race detector is compiled in; tests that
// count allocations skip under it (sync.Pool intentionally misbehaves).
const raceEnabled = true
