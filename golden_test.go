package rmt

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

// Golden-transcript regression tests: each case pins the full JSONL event
// stream (every send, drop, delivery, decision, halt, and round boundary)
// of a canonical run from the examples. The protocols and both engines are
// deterministic, so any diff against testdata/golden/ is a behavioral
// change that must be reviewed — and every engine must reproduce the
// synchronous stream byte-for-byte (modulo the engine name in the run
// header, which is normalized away).
//
// Regenerate after an intentional change with:
//
//	go test . -run TestGoldenTranscripts -update

var updateGolden = flag.Bool("update", false, "rewrite the golden transcripts in testdata/golden")

// engineField strips the one engine-dependent byte sequence from the
// stream: the run header's engine name.
var engineField = regexp.MustCompile(`"engine":"[a-z]+"`)

func normalizeEngine(b []byte) []byte {
	return engineField.ReplaceAll(b, []byte(`"engine":"*"`))
}

type goldenCase struct {
	name     string
	protocol string
	xD       Value
	// build returns the instance and the corruption overlay.
	build func(t *testing.T) (*Instance, map[int]Process)
	// opts, when non-nil, returns additional run options for the case.
	// It is called once per run because some options are single-use
	// (message adversaries, schedulers).
	opts func() RunOptions
}

// quickstartInstance is the examples/quickstart fixture: three disjoint
// relay paths 0→{1,2,3}→4 under singleton corruption.
func quickstartInstance(t *testing.T) *Instance {
	t.Helper()
	g, err := ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewAdHocInstance(g, StructureOf([]int{1}, []int{2}, []int{3}), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// layeredInstance is the examples/adhoc solvable fixture: two complete
// relay layers under a global threshold-1 adversary.
func layeredInstance(t *testing.T) *Instance {
	t.Helper()
	g, err := ParseEdgeList("0-1 0-2 0-3 1-4 1-5 1-6 2-4 2-5 2-6 3-4 3-5 3-6 4-7 5-7 6-7")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewAdHocInstance(g, Threshold(NodeSet(1, 2, 3, 4, 5, 6), 1), 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// diamondInstance is the examples/adhoc impossible fixture: the weak
// diamond, where safety forces the receiver to stay undecided.
func diamondInstance(t *testing.T) *Instance {
	t.Helper()
	g, err := ParseEdgeList("0-1 0-2 1-3 2-3")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewAdHocInstance(g, StructureOf([]int{1}, []int{2}), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// k6Instance is the MBRB fixture: the complete graph K6 under a global
// threshold-1 adversary on the interior, so n=6 > 3t+2d holds up to one
// Byzantine player plus a budget-1 message adversary.
func k6Instance(t *testing.T) *Instance {
	t.Helper()
	g, err := ParseEdgeList("0-1 0-2 0-3 0-4 0-5 1-2 1-3 1-4 1-5 2-3 2-4 2-5 3-4 3-5 4-5")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewAdHocInstance(g, Threshold(NodeSet(1, 2, 3, 4), 1), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func valueFlip(t *testing.T, in *Instance, node int) map[int]Process {
	t.Helper()
	corrupt, err := NewAttack("value-flip", in, NodeSet(node), "retreat at once")
	if err != nil {
		t.Fatal(err)
	}
	return corrupt
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{
			name:     "quickstart-pka-honest",
			protocol: ProtocolPKA,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				return quickstartInstance(t), nil
			},
		},
		{
			name:     "quickstart-pka-silenced",
			protocol: ProtocolPKA,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				return quickstartInstance(t), SilentCorruption(NodeSet(2))
			},
		},
		{
			name:     "adhoc-zcpa-layered-valueflip",
			protocol: ProtocolZCPA,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				in := layeredInstance(t)
				return in, valueFlip(t, in, 5)
			},
		},
		{
			name:     "adhoc-zcpa-diamond-valueflip",
			protocol: ProtocolZCPA,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				in := diamondInstance(t)
				return in, valueFlip(t, in, 1)
			},
		},
		{
			name:     "mbrb-k6-honest",
			protocol: ProtocolMBRB,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				return k6Instance(t), nil
			},
		},
		{
			// The worst case the n > 3t + 2d bound provisions for: one
			// silent Byzantine player plus an eclipse adversary starving
			// one victim at the full budget d=1. Every correct non-victim
			// still delivers; the suppressed copies surface as lose events.
			name:     "mbrb-k6-eclipsed",
			protocol: ProtocolMBRB,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				in := k6Instance(t)
				return in, SilentCorruption(NodeSet(1))
			},
			opts: func() RunOptions {
				return RunOptions{MABudget: 1, MsgAdversary: NewEclipse(2)}
			},
		},
		{
			// Secret sharing over the quickstart graph: with relay 1
			// corruptible and relays 2 and 3 each independently listenable,
			// the plan spreads XOR shares over the 2- and 3-paths, so
			// neither eavesdropping set sees them all.
			name:     "smt-quickstart-honest",
			protocol: ProtocolSMT,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				g, err := ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
				if err != nil {
					t.Fatal(err)
				}
				in, err := NewAdHocInstance(g, StructureOf([]int{1}), 0, 4)
				if err != nil {
					t.Fatal(err)
				}
				return in, nil
			},
			opts: func() RunOptions {
				return RunOptions{Listen: StructureOf([]int{2}, []int{3}), Seed: 7}
			},
		},
		{
			// Same run with a forwarding listener squatting on relay 2: the
			// wiretap changes no message, so the stream must match an honest
			// relay's — passivity pinned at the transcript level.
			name:     "smt-quickstart-listened",
			protocol: ProtocolSMT,
			xD:       "attack at dawn",
			build: func(t *testing.T) (*Instance, map[int]Process) {
				g, err := ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
				if err != nil {
					t.Fatal(err)
				}
				in, err := NewAdHocInstance(g, StructureOf([]int{1}), 0, 4)
				if err != nil {
					t.Fatal(err)
				}
				corrupt, err := NewAttack("listener", in, NodeSet(2), "")
				if err != nil {
					t.Fatal(err)
				}
				return in, corrupt
			},
			opts: func() RunOptions {
				return RunOptions{Listen: StructureOf([]int{2}, []int{3}), Seed: 7}
			},
		},
	}
}

// transcriptJSONL runs the case under the given engine and returns the
// normalized JSONL event stream. Corruption overlays are stateful and
// single-use, so the case is rebuilt per run.
func transcriptJSONL(t *testing.T, gc goldenCase, engine Engine) []byte {
	t.Helper()
	in, corrupt := gc.build(t)
	var buf bytes.Buffer
	jt := NewJSONLTracer(&buf)
	var opts RunOptions
	if gc.opts != nil {
		opts = gc.opts()
	}
	opts.Engine, opts.Tracers = engine, []Tracer{jt}
	if _, err := RunProtocol(gc.protocol, in, gc.xD, corrupt, opts); err != nil {
		t.Fatalf("%s under %v: %v", gc.name, engine, err)
	}
	if err := jt.Err(); err != nil {
		t.Fatalf("%s under %v: jsonl: %v", gc.name, engine, err)
	}
	return normalizeEngine(buf.Bytes())
}

func TestGoldenTranscripts(t *testing.T) {
	for _, gc := range goldenCases() {
		t.Run(gc.name, func(t *testing.T) {
			path := filepath.Join("testdata", "golden", gc.name+".jsonl")
			ref := transcriptJSONL(t, gc, Lockstep)
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, ref, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden transcript (run with -update to create): %v", err)
			}
			for _, engine := range []Engine{Lockstep, Goroutine, Async} {
				got := transcriptJSONL(t, gc, engine)
				if !bytes.Equal(got, want) {
					t.Errorf("%v transcript differs from %s:\n%s", engine, path, diffLine(want, got))
				}
			}
		})
	}
}

// TestGoldenTranscriptsSeededAsync pins the async engine the other way: a
// fixed (schedule, seed) pair must reproduce its own stream byte-for-byte
// across runs — the determinism the schedule fuzzer's replay relies on.
func TestGoldenTranscriptsSeededAsync(t *testing.T) {
	gc := goldenCases()[0]
	runOnce := func() []byte {
		t.Helper()
		in, corrupt := gc.build(t)
		sched, err := NewScheduler("random", 42)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		jt := NewJSONLTracer(&buf)
		opts := RunOptions{Engine: Async, Scheduler: sched, Tracers: []Tracer{jt}}
		if _, err := RunProtocol(gc.protocol, in, gc.xD, corrupt, opts); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runOnce(), runOnce()
	if !bytes.Equal(a, b) {
		t.Fatalf("seeded async run is not reproducible:\n%s", diffLine(a, b))
	}
	if !bytes.Contains(a, []byte(`"ev":"delay"`)) {
		t.Fatal("seeded random schedule produced no delay events")
	}
}

// diffLine renders the first differing line of two JSONL streams.
func diffLine(want, got []byte) string {
	w, g := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	for i := 0; i < len(w) && i < len(g); i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
