package rmt

// One benchmark per experiment table/figure of EXPERIMENTS.md (E1–E8, F1,
// F2), plus micro-benchmarks for the protocol hot paths. Regenerate the
// printed tables themselves with: go run ./cmd/rmtbench
import (
	"io"
	"testing"

	"rmt/internal/benchdef"
	"rmt/internal/eval"
	"rmt/internal/gen"
	"rmt/internal/nodeset"
)

func benchParams() eval.Params { return eval.Params{Seed: 2016, Trials: 10} }

// --- one bench per table/figure -----------------------------------------

func BenchmarkE1JoinViewAlgebra(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E1JoinAlgebra(benchParams())
	}
}

func BenchmarkE2PKATightness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E2PKATightness(benchParams())
	}
}

func BenchmarkE3PKAUnderAttack(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E3Safety(benchParams())
	}
}

func BenchmarkE4ZCPATightness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E4ZCPATightness(benchParams())
	}
}

func BenchmarkE5KnowledgeSweep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E5KnowledgeSweep(benchParams())
	}
}

func BenchmarkE6MinimalKnowledge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E6MinimalKnowledge(benchParams())
	}
}

func BenchmarkE7DecisionProtocol(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E7DecisionProtocol(benchParams())
	}
}

func BenchmarkE8Scaling(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E8Scaling(benchParams())
	}
}

func BenchmarkE9BroadcastTightness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E9BroadcastTightness(benchParams())
	}
}

func BenchmarkE10HorizonAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E10HorizonAblation(benchParams())
	}
}

func BenchmarkE11RepresentationAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E11RepresentationAblation(benchParams())
	}
}

func BenchmarkE12Discovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E12Discovery(benchParams())
	}
}

func BenchmarkF1BasicInstances(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.F1BasicFrontier(benchParams())
	}
}

func BenchmarkF2IndistinguishableRuns(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.F2IndistinguishableRuns(benchParams())
	}
}

// --- protocol micro-benchmarks -------------------------------------------

// BenchmarkProtocols runs the shared protocol hot-path table of
// internal/benchdef — the same table cmd/rmtbench snapshots into BENCH.json
// — as sub-benchmarks, so `go test -bench` and the committed baseline
// cannot drift apart. Run one entry with e.g.
// go test -bench 'Protocols/PKARun$' .
func BenchmarkProtocols(b *testing.B) {
	for _, pb := range benchdef.ProtoBenches {
		b.Run(pb.Name, func(b *testing.B) {
			in, err := pb.Instance()
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := RunProtocol(pb.Protocol, in, "x", nil, pb.Opts)
				if err != nil {
					b.Fatal(err)
				}
				if pb.MustDecide {
					if _, ok := res.DecisionOf(in.Receiver); !ok {
						b.Fatal("undecided")
					}
				}
			}
		})
	}
}

// benchInstance builds 3 disjoint relay chains with singleton corruption.
// With hops = 2 the instance is ad hoc-UNSOLVABLE (chimera sets survive the
// neighborhood-only ⊕) but solvable at radius-2 knowledge; with hops = 1 it
// is solvable even ad hoc. The engine/attack/decider variants below pick
// the level that lets their protocol decide; the plain protocol runs live
// in BenchmarkProtocols via the shared table.
func benchInstance(b *testing.B, hops int, level gen.Knowledge) *Instance {
	b.Helper()
	g, d, r := gen.DisjointPaths(3, hops)
	z := gen.Singletons(g.Nodes().Minus(nodeset.Of(d, r)))
	in, err := gen.Build(g, z, level, d, r)
	if err != nil {
		b.Fatal(err)
	}
	return in
}

func BenchmarkPKARunGoroutineEngine(b *testing.B) {
	in := benchInstance(b, 1, gen.AdHoc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPKA(in, "x", nil, PKAOptions{Engine: Goroutine}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPKAUnderSilentAttack(b *testing.B) {
	in := benchInstance(b, 1, gen.AdHoc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunPKA(in, "x", SilentCorruption(NodeSet(1)), PKAOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZCPAWithPiDecider(b *testing.B) {
	in := benchInstance(b, 1, gen.AdHoc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunZCPA(in, "x", nil, ZCPAOptions{Decider: NewPiDecider(in)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRMTCutCheck(b *testing.B) {
	g, z, d, r := gen.ChimeraScaled(3)
	in, err := gen.Build(g, z, gen.AdHoc, d, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindRMTCut(in)
	}
}

func BenchmarkZppCutCheck(b *testing.B) {
	g, z, d, r := gen.ChimeraScaled(3)
	in, err := gen.Build(g, z, gen.AdHoc, d, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindZppCut(in)
	}
}

func BenchmarkFeasibleReceivers(b *testing.B) {
	g, z, d, _ := gen.ChimeraScaled(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FeasibleReceivers(g, z, RadiusView(g, 2), d)
	}
}

func BenchmarkMinimalKnowledgeRadius(b *testing.B) {
	g, z, d, r := gen.ChimeraScaled(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := MinimalKnowledgeRadius(g, z, d, r); !ok {
			b.Fatal("unsolvable")
		}
	}
}

// Guard against accidentally huge table output: render once to io.Discard.
func BenchmarkRenderAllTables(b *testing.B) {
	tables := eval.RunAll(benchParams())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range tables {
			t.Render(io.Discard)
		}
	}
}

func BenchmarkE13Exhaustive(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.E13Exhaustive(benchParams())
	}
}
