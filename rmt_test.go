package rmt

import (
	"testing"
)

func triple(t *testing.T) (*Graph, Structure) {
	t.Helper()
	g, err := ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	if err != nil {
		t.Fatal(err)
	}
	return g, StructureOf([]int{1}, []int{2}, []int{3})
}

func TestQuickstartFlow(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !SolvablePKA(in) || !SolvableZCPA(in) {
		t.Fatal("triple path should be solvable")
	}
	res, err := RunPKA(in, "attack at dawn", nil, PKAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "attack at dawn" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestRunZCPAWithSilentCorruption(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunZCPA(in, "x", SilentCorruption(NodeSet(2)), ZCPAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestRunPPAFullKnowledge(t *testing.T) {
	g, z := triple(t)
	in, err := NewInstance(g, z, FullView(g), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPPA(in, "x", nil, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
	if _, _, found := FindPairCut(in); found {
		t.Fatal("pair cut on triple path")
	}
}

func TestCutWitnesses(t *testing.T) {
	g, err := ParseEdgeList("0-1 0-2 1-3 2-3")
	if err != nil {
		t.Fatal(err)
	}
	z := StructureOf([]int{1}, []int{2})
	in, err := NewAdHocInstance(g, z, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if SolvablePKA(in) || SolvableZCPA(in) {
		t.Fatal("weak diamond should be unsolvable")
	}
	if _, found := FindRMTCut(in); !found {
		t.Fatal("no RMT-cut witness")
	}
	if _, found := FindZppCut(in); !found {
		t.Fatal("no Z-pp cut witness")
	}
}

func TestResilienceCheckers(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := ResilientPKA(in); err != nil || !ok {
		t.Fatalf("ResilientPKA = %v, %v", ok, err)
	}
	if ok, err := ResilientZCPA(in); err != nil || !ok {
		t.Fatalf("ResilientZCPA = %v, %v", ok, err)
	}
}

func TestAttackZooSafety(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	for name, corrupt := range AttackZoo(in, NodeSet(2), "forged") {
		res, err := RunPKA(in, "real", corrupt, PKAOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := res.DecisionOf(4); ok && got != "real" {
			t.Errorf("strategy %s: decided %q", name, got)
		}
	}
}

func TestThresholdAndTLocal(t *testing.T) {
	g, err := ParseEdgeList("0-1 0-2 0-3 1-4 2-4 3-4")
	if err != nil {
		t.Fatal(err)
	}
	z := Threshold(NodeSet(1, 2, 3), 1)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !SolvableZCPA(in) {
		t.Fatal("threshold-1 triple path unsolvable")
	}
	tl := TLocal(g, 1)
	if tl.Contains(NodeSet(1, 2)) {
		t.Fatal("t-local allows two corruptions in N(0)")
	}
}

func TestJoinViewsPublic(t *testing.T) {
	z := StructureOf([]int{1, 2})
	a := z.RestrictTo(NodeSet(1))
	b := z.RestrictTo(NodeSet(2))
	j := JoinViews(a, b)
	if !j.Contains(NodeSet(1, 2)) {
		t.Fatal("join lost the chimera union")
	}
}

func TestFeasibleReceivers(t *testing.T) {
	g, z := triple(t)
	got := FeasibleReceivers(g, z, AdHocView(g), 0)
	// Only node 4 is outside the corruptible ground and solvable.
	if !got.Equal(NodeSet(4)) {
		t.Fatalf("FeasibleReceivers = %v", got)
	}
}

func TestMinimalKnowledgeRadius(t *testing.T) {
	g, err := ParseEdgeList("0-1 0-2 0-3 1-4 2-4 1-5 3-5 4-6 5-6")
	if err != nil {
		t.Fatal(err)
	}
	z := StructureOf([]int{1}, []int{2}, []int{3})
	k, ok := MinimalKnowledgeRadius(g, z, 0, 6)
	if !ok || k != 2 {
		t.Fatalf("MinimalKnowledgeRadius = %d, %v; want 2, true", k, ok)
	}
	// Unsolvable instance.
	g2, _ := ParseEdgeList("0-1 0-2 1-3 2-3")
	if _, ok := MinimalKnowledgeRadius(g2, StructureOf([]int{1}, []int{2}), 0, 3); ok {
		t.Fatal("weak diamond reported solvable")
	}
}

func TestPiDeciderPublic(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	pi := NewPiDecider(in)
	res, err := RunZCPA(in, "x", nil, ZCPAOptions{Decider: pi})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
	if pi.SimulatedRuns == 0 {
		t.Fatal("no Π runs simulated")
	}
}

func TestBasicPublic(t *testing.T) {
	b := NewBasic(NodeSet(1, 2, 3), StructureOf([]int{1}))
	if !b.Solvable() {
		t.Fatal("basic instance should be solvable")
	}
}

func TestGoroutineEnginePublic(t *testing.T) {
	g, z := triple(t)
	in, err := NewAdHocInstance(g, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPKA(in, "x", nil, PKAOptions{Engine: Goroutine})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(4); !ok || got != "x" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}

func TestNoCorruptionLine(t *testing.T) {
	g, err := ParseEdgeList("0-1 1-2 2-3")
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewAdHocInstance(g, NoCorruption(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPKA(in, "hello", nil, PKAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := res.DecisionOf(3); !ok || got != "hello" {
		t.Fatalf("decision = %q, %v", got, ok)
	}
}
