package rmt

import (
	"rmt/internal/broadcast"
	"rmt/internal/discovery"
)

// Extension types: Reliable Broadcast (the paper's root setting from [13])
// and Byzantine topology discovery (the application direction of the
// paper's conclusions).
type (
	// BroadcastInstance is a Reliable Broadcast tuple (G, 𝒵, D): every
	// honest player must decide the honest dealer's value.
	BroadcastInstance = broadcast.Instance
	// BroadcastZppCut witnesses broadcast impossibility (Definition 10).
	BroadcastZppCut = broadcast.ZppCut
	// DiscoveryResult is the reconstruction output of Byzantine topology
	// discovery.
	DiscoveryResult = discovery.Result
)

// NewBroadcast assembles a broadcast instance in the ad hoc model.
func NewBroadcast(g *Graph, z Structure, dealer int) (*BroadcastInstance, error) {
	return broadcast.New(g, z, dealer)
}

// RunBroadcast executes 𝒵-CPA in its original Reliable Broadcast role; all
// players' decisions are in the result.
func RunBroadcast(in *BroadcastInstance, xD Value, corrupt map[int]Process, engine Engine) (*Result, error) {
	return broadcast.Run(in, xD, corrupt, engine)
}

// SolvableBroadcast reports whether broadcast is achievable (no
// Definition-10 𝒵-pp cut).
func SolvableBroadcast(in *BroadcastInstance) bool { return broadcast.Solvable(in) }

// FindBroadcastCut searches for a Definition-10 cut witness.
func FindBroadcastCut(in *BroadcastInstance) (BroadcastZppCut, bool) {
	return broadcast.FindZppCut(in)
}

// ResilientBroadcast verifies broadcast operationally against every
// admissible corruption set (exponential in the maximal-set sizes —
// broadcast liveness is not monotone in the corruption set).
func ResilientBroadcast(in *BroadcastInstance) (bool, error) { return broadcast.Resilient(in) }

// DiscoverTopology floods every player's partial knowledge through the
// network and returns the observer's Byzantine-resilient reconstruction:
// bilateral-confirmed edges, contested claimants, and the ⊕-joint adversary
// structure of everything learned.
func DiscoverTopology(g *Graph, z Structure, gamma ViewFunction, observer int, corrupt map[int]Process, engine Engine) (*DiscoveryResult, error) {
	return discovery.Run(g, z, gamma, observer, corrupt, engine)
}
